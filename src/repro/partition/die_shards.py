"""FPGA-aligned spatial shards for process-parallel routing.

The sharded phase I (:mod:`repro.parallel.sharding`) needs the die graph
cut into spatially disjoint regions so workers can route interior
connections without sharing mutable edge state.  This module derives
those regions with the existing FM machinery, following the
recursive-partitioning recipe of *An Open-Source Fast Parallel Routing
Approach for Commercial FPGAs* (PAPERS.md).

Shards are FPGA-aligned: the FM cells are whole FPGA devices, never
individual dies.  The architecture invariant enforced by
:class:`~repro.arch.MultiFpgaSystem` — SLL edges live within one FPGA,
TDM edges always cross FPGAs — then guarantees every inter-shard edge is
a TDM edge, so a connection whose source and sink cones stay inside one
shard can never contend with another shard for SLL wires.  Cutting
below FPGA granularity would break that guarantee.

The cut objective is the hyperedge set of inter-FPGA TDM edges (one
two-pin hyperedge per adjacent FPGA pair); areas weight FPGAs by their
connection-endpoint counts when a netlist is supplied, so shards balance
routing *work*, not just die counts.  Shard connectivity is **not**
required: workers route on the full die graph (only shard *assignment*
is spatial), so a shard consisting of disconnected FPGA groups is
legal, merely less effective at avoiding boundary nets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.arch import MultiFpgaSystem
from repro.netlist import Netlist
from repro.partition.fm import fm_bipartition


@dataclass(frozen=True)
class DieShards:
    """Spatially disjoint, FPGA-aligned shards of a die graph.

    Attributes:
        shards: per-shard sorted tuples of FPGA indices.
        fpga_shard: per-FPGA shard index.
        die_shard: per-die shard index (dies follow their FPGA).
        cut_edges: global indices of edges crossing shards (all TDM).
    """

    shards: Tuple[Tuple[int, ...], ...]
    fpga_shard: Tuple[int, ...]
    die_shard: Tuple[int, ...]
    cut_edges: Tuple[int, ...]

    @property
    def num_shards(self) -> int:
        """Number of shards."""
        return len(self.shards)


def derive_die_shards(
    system: MultiFpgaSystem,
    num_shards: int,
    netlist: Optional[Netlist] = None,
    max_passes: int = 10,
) -> DieShards:
    """Cut the system's FPGAs into ``num_shards`` spatial shards.

    Recursive FM bisection over the FPGA-level graph: cells are FPGAs,
    hyperedges are the inter-FPGA TDM edges (one two-pin edge per
    adjacent FPGA pair, weighted implicitly by multiplicity), and areas
    are per-FPGA connection-endpoint counts when ``netlist`` is given
    (die counts otherwise).  ``num_shards`` is capped at the FPGA count;
    shards are renumbered so shard 0 holds the lowest FPGA index.

    Args:
        system: the die-level architecture.
        num_shards: requested shard count (>= 1).
        netlist: optional netlist used to weight FPGAs by routing work.
        max_passes: FM improvement passes per bisection.

    Returns:
        The derived :class:`DieShards`.

    Raises:
        ValueError: if ``num_shards`` is not positive.
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    num_fpgas = system.num_fpgas
    num_shards = min(num_shards, num_fpgas)

    areas = _fpga_areas(system, netlist)
    fpga_shard = [0] * num_fpgas
    _bisect(
        sorted(range(num_fpgas)),
        num_shards,
        0,
        system,
        areas,
        fpga_shard,
        max_passes,
    )

    # Renumber shards by their lowest FPGA index so the labelling is a
    # pure function of the cut, not of the bisection recursion order.
    first_fpga: dict = {}
    for fpga in range(num_fpgas):
        first_fpga.setdefault(fpga_shard[fpga], fpga)
    relabel = {
        old: new
        for new, old in enumerate(
            sorted(first_fpga, key=lambda label: first_fpga[label])
        )
    }
    fpga_shard = [relabel[label] for label in fpga_shard]

    shards: List[List[int]] = [[] for _ in range(max(fpga_shard) + 1)]
    for fpga, shard in enumerate(fpga_shard):
        shards[shard].append(fpga)
    die_shard = [
        fpga_shard[die.fpga_index] for die in system.dies
    ]
    cut_edges = tuple(
        edge.index
        for edge in system.edges
        if die_shard[edge.die_a] != die_shard[edge.die_b]
    )
    return DieShards(
        shards=tuple(tuple(sorted(members)) for members in shards),
        fpga_shard=tuple(fpga_shard),
        die_shard=tuple(die_shard),
        cut_edges=cut_edges,
    )


def _fpga_areas(
    system: MultiFpgaSystem, netlist: Optional[Netlist]
) -> List[float]:
    """Per-FPGA work estimate: connection endpoints, else die counts."""
    areas = [float(fpga.num_dies) for fpga in system.fpgas]
    if netlist is None:
        return areas
    endpoints = [0.0] * system.num_fpgas
    for conn in netlist.connections:
        endpoints[system.dies[conn.source_die].fpga_index] += 1.0
        endpoints[system.dies[conn.sink_die].fpga_index] += 1.0
    # Blend in the die-count floor so unused FPGAs keep nonzero area
    # (FM rejects zero-area packings poorly and a dormant FPGA should
    # still land somewhere sensible).
    return [endpoints[i] + areas[i] for i in range(system.num_fpgas)]


def _take_smallest(side: List[int], areas: Sequence[float]) -> int:
    """Pop the smallest-area (lowest-index on ties) FPGA from ``side``."""
    victim = min(side, key=lambda fpga: (areas[fpga], fpga))
    side.remove(victim)
    return victim


def _bisect(
    members: Sequence[int],
    parts: int,
    label_base: int,
    system: MultiFpgaSystem,
    areas: Sequence[float],
    fpga_shard: List[int],
    max_passes: int,
) -> None:
    """Recursively split ``members`` into ``parts`` shards.

    Mirrors ``DiePartitioner``'s split rule: ``parts`` divides into
    ``(parts + 1) // 2`` and ``parts // 2`` so uneven counts lean left;
    side capacities are scaled by the target part counts so a 3-way
    split of 4 FPGAs lands 2/1-ish rather than forcing exact halves.
    """
    if parts <= 1 or len(members) <= 1:
        for fpga in members:
            fpga_shard[fpga] = label_base
        return
    left_parts = (parts + 1) // 2
    right_parts = parts // 2

    local_index = {fpga: i for i, fpga in enumerate(members)}
    member_set = set(members)
    edges: List[Tuple[int, ...]] = []
    for edge in system.tdm_edges:
        fpga_a = system.dies[edge.die_a].fpga_index
        fpga_b = system.dies[edge.die_b].fpga_index
        if fpga_a in member_set and fpga_b in member_set and fpga_a != fpga_b:
            edges.append((local_index[fpga_a], local_index[fpga_b]))

    local_areas = [areas[fpga] for fpga in members]
    total_area = sum(local_areas)
    max_area = max(local_areas)
    left_cap = total_area * left_parts / parts + max_area
    right_cap = total_area * right_parts / parts + max_area
    result = fm_bipartition(
        len(members),
        edges,
        areas=local_areas,
        capacities=(left_cap, right_cap),
        max_passes=max_passes,
    )

    left = [fpga for i, fpga in enumerate(members) if result.sides[i] == 0]
    right = [fpga for i, fpga in enumerate(members) if result.sides[i] == 1]
    if not left or not right:
        # Degenerate cut (capacities or topology collapsed one side):
        # fall back to an area-balanced deterministic split so recursion
        # always terminates with the requested part count.
        ordered = sorted(members, key=lambda f: (-areas[f], f))
        left, right = [], []
        fill = [0.0, 0.0]
        caps = (left_cap, right_cap)
        for fpga in ordered:
            side = 0 if fill[0] + areas[fpga] <= caps[0] + 1e-9 else 1
            if side == 1 and fill[1] + areas[fpga] > caps[1] + 1e-9:
                side = 0 if fill[0] <= fill[1] else 1
            (left if side == 0 else right).append(fpga)
            fill[side] += areas[fpga]
        if not left or not right:
            half = max(1, len(members) // 2)
            ordered = sorted(members)
            left, right = ordered[:half], ordered[half:]

    # Each side must keep at least its target part count, or the
    # recursion bottoms out short of the requested shards (an FM cut is
    # free to go 3/1 on four FPGAs when the capacities allow it).  Move
    # the smallest-area cells across until the counts work; num_shards
    # is capped at the FPGA count, so the surplus side can always pay.
    while len(left) < left_parts:
        left.append(_take_smallest(right, areas))
    while len(right) < right_parts:
        right.append(_take_smallest(left, areas))

    _bisect(
        sorted(left), left_parts, label_base, system, areas, fpga_shard,
        max_passes,
    )
    _bisect(
        sorted(right),
        right_parts,
        label_base + left_parts,
        system,
        areas,
        fpga_shard,
        max_passes,
    )
