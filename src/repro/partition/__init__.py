"""Die-level partitioning substrate.

The paper's router consumes *die-level partitioning results* (Fig. 2(b)):
every cell of the design already lives on a die, so nets become
die-to-die connections.  This package provides the preceding flow stage
for users starting from a flat netlist:

* :mod:`repro.partition.logic` — the flat logic netlist model (cells with
  areas, multi-terminal hyperedge nets).
* :mod:`repro.partition.fm` — Fiduccia–Mattheyses min-cut bipartitioning
  with area balance.
* :mod:`repro.partition.partitioner` — recursive bisection onto the dies
  of a :class:`~repro.arch.MultiFpgaSystem` and conversion of the placed
  design into the router's die-level :class:`~repro.netlist.Netlist`.
* :mod:`repro.partition.generator` — a synthetic clustered logic netlist
  generator for experiments.
* :mod:`repro.partition.die_shards` — FPGA-aligned spatial shards of an
  existing system for process-parallel routing.
"""

from repro.partition.logic import Cell, LogicNet, LogicNetlist
from repro.partition.fm import FmResult, fm_bipartition
from repro.partition.partitioner import DiePartitioner, PartitionResult
from repro.partition.generator import generate_logic_netlist
from repro.partition.die_shards import DieShards, derive_die_shards

__all__ = [
    "Cell",
    "DiePartitioner",
    "DieShards",
    "FmResult",
    "LogicNet",
    "LogicNetlist",
    "PartitionResult",
    "derive_die_shards",
    "fm_bipartition",
    "generate_logic_netlist",
]
