"""Synthetic clustered logic netlists for partitioning experiments.

Real designs have strong locality (Rent's rule): most nets connect cells
within a module, few cross module boundaries.  The generator builds a
configurable number of modules with dense intra-module nets plus a sparse
layer of global nets, which gives partitioners realistic structure to
exploit (a random hypergraph would have no good cut at all).
"""

from __future__ import annotations

import random
from typing import List

from repro.partition.logic import Cell, LogicNet, LogicNetlist


def generate_logic_netlist(
    num_cells: int = 400,
    num_modules: int = 8,
    nets_per_cell: float = 1.2,
    global_net_fraction: float = 0.1,
    max_fanout: int = 6,
    seed: int = 2023,
    area_spread: float = 0.5,
) -> LogicNetlist:
    """Generate a clustered synthetic design.

    Args:
        num_cells: total cells.
        num_modules: clusters; intra-module nets stay inside one.
        nets_per_cell: total nets ≈ num_cells * nets_per_cell.
        global_net_fraction: fraction of nets drawing cells from the whole
            design instead of one module.
        max_fanout: maximum sinks per net.
        seed: RNG seed (generation is deterministic).
        area_spread: cell areas drawn uniformly from
            ``[1 - spread/2, 1 + spread/2]``.

    Returns:
        The generated design.
    """
    if num_cells < 2:
        raise ValueError("need at least two cells")
    if not 0 <= global_net_fraction <= 1:
        raise ValueError("global_net_fraction must be in [0, 1]")
    rng = random.Random(seed)
    cells = [
        Cell(
            name=f"c{i}",
            area=max(0.1, 1.0 + (rng.random() - 0.5) * area_spread),
        )
        for i in range(num_cells)
    ]
    modules: List[List[int]] = [[] for _ in range(max(1, num_modules))]
    for index in range(num_cells):
        modules[index % len(modules)].append(index)

    num_nets = max(1, round(num_cells * nets_per_cell))
    nets: List[LogicNet] = []
    for net_index in range(num_nets):
        if rng.random() < global_net_fraction:
            pool = list(range(num_cells))
        else:
            pool = modules[rng.randrange(len(modules))]
            if len(pool) < 2:
                pool = list(range(num_cells))
        fanout = rng.randint(1, max_fanout)
        size = min(1 + fanout, len(pool))
        members = rng.sample(pool, size)
        nets.append(
            LogicNet(name=f"n{net_index}", cell_names=tuple(f"c{m}" for m in members))
        )
    return LogicNetlist(cells, nets)
