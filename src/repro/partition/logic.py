"""Flat logic netlist model for the partitioning stage."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple


@dataclass(frozen=True)
class Cell:
    """A placeable cell (gate, LUT cluster, macro).

    Attributes:
        name: unique cell name.
        area: placement area consumed on a die (> 0).
        index: position in the owning netlist; assigned on construction.
    """

    name: str
    area: float = 1.0
    index: int = field(default=-1, compare=False)

    def __post_init__(self) -> None:
        if self.area <= 0:
            raise ValueError(f"cell {self.name!r}: area must be positive")

    def with_index(self, index: int) -> "Cell":
        """Copy with ``index`` assigned."""
        return Cell(name=self.name, area=self.area, index=index)


@dataclass(frozen=True)
class LogicNet:
    """A multi-terminal net of the flat design.

    Attributes:
        name: unique net name.
        cell_names: connected cells; the first is the driver.
    """

    name: str
    cell_names: Tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.cell_names) < 2:
            raise ValueError(f"net {self.name!r}: a net connects >= 2 cells")
        if len(set(self.cell_names)) != len(self.cell_names):
            deduped = tuple(dict.fromkeys(self.cell_names))
            if len(deduped) < 2:
                raise ValueError(f"net {self.name!r}: a net connects >= 2 cells")
            object.__setattr__(self, "cell_names", deduped)

    @property
    def driver(self) -> str:
        """The driving cell's name."""
        return self.cell_names[0]

    @property
    def sinks(self) -> Tuple[str, ...]:
        """The sink cells' names."""
        return self.cell_names[1:]


class LogicNetlist:
    """A flat design: cells plus hyperedge nets.

    Args:
        cells: the cells; names must be unique.
        nets: the nets; names must be unique and reference known cells.
    """

    def __init__(self, cells: Iterable[Cell], nets: Iterable[LogicNet]) -> None:
        self.cells: List[Cell] = [c.with_index(i) for i, c in enumerate(cells)]
        self._cell_index: Dict[str, int] = {}
        for cell in self.cells:
            if cell.name in self._cell_index:
                raise ValueError(f"duplicate cell name {cell.name!r}")
            self._cell_index[cell.name] = cell.index
        self.nets: List[LogicNet] = list(nets)
        seen = set()
        for net in self.nets:
            if net.name in seen:
                raise ValueError(f"duplicate net name {net.name!r}")
            seen.add(net.name)
            for cell_name in net.cell_names:
                if cell_name not in self._cell_index:
                    raise ValueError(
                        f"net {net.name!r} references unknown cell {cell_name!r}"
                    )
        # Hyperedges as cell-index tuples, for the partitioners.
        self.edges: List[Tuple[int, ...]] = [
            tuple(self._cell_index[name] for name in net.cell_names)
            for net in self.nets
        ]

    @property
    def num_cells(self) -> int:
        """Number of cells."""
        return len(self.cells)

    @property
    def num_nets(self) -> int:
        """Number of nets."""
        return len(self.nets)

    def cell_index(self, name: str) -> int:
        """Index of the cell with the given name."""
        return self._cell_index[name]

    def total_area(self) -> float:
        """Total cell area."""
        return sum(cell.area for cell in self.cells)

    def cut_size(self, sides: Sequence[int]) -> int:
        """Number of nets spanning more than one side label."""
        cut = 0
        for edge in self.edges:
            labels = {sides[cell] for cell in edge}
            if len(labels) > 1:
                cut += 1
        return cut

    def __repr__(self) -> str:
        return f"LogicNetlist(cells={self.num_cells}, nets={self.num_nets})"
