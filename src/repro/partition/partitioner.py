"""Recursive bisection of a flat design onto the dies of a system.

The die set is split recursively (keeping FPGAs together as long as
possible, so the expensive TDM cut happens at the top of the recursion,
exactly like production die-level partitioners), FM bipartitioning the
cell set at each level.  The placed design converts directly into the
router's die-level :class:`~repro.netlist.Netlist`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.arch.system import MultiFpgaSystem
from repro.netlist.net import Net
from repro.netlist.netlist import Netlist
from repro.partition.fm import fm_bipartition
from repro.partition.logic import LogicNetlist


@dataclass
class PartitionResult:
    """Output of die-level partitioning.

    Attributes:
        assignment: per-cell die index.
        die_areas: total cell area per die.
        cut_nets: number of logic nets spanning more than one die.
    """

    assignment: List[int]
    die_areas: Dict[int, float]
    cut_nets: int


class DiePartitioner:
    """Recursively bisects a logic netlist onto a system's dies.

    Args:
        system: the target multi-FPGA system.
        balance_slack: allowed per-die area overfill as a fraction of the
            perfectly balanced share (0.15 = up to 15% over).
        max_passes: FM passes per bisection level.
    """

    def __init__(
        self,
        system: MultiFpgaSystem,
        balance_slack: float = 0.15,
        max_passes: int = 8,
    ) -> None:
        if balance_slack < 0:
            raise ValueError("balance_slack must be non-negative")
        self.system = system
        self.balance_slack = balance_slack
        self.max_passes = max_passes

    # ------------------------------------------------------------------
    def partition(self, design: LogicNetlist) -> PartitionResult:
        """Assign every cell to a die."""
        die_order = self._die_order()
        assignment = [-1] * design.num_cells
        cells = list(range(design.num_cells))
        self._bisect(design, cells, die_order, assignment)
        die_areas: Dict[int, float] = {}
        for cell_index, die in enumerate(assignment):
            die_areas[die] = die_areas.get(die, 0.0) + design.cells[cell_index].area
        cut = 0
        for edge in design.edges:
            if len({assignment[cell] for cell in edge}) > 1:
                cut += 1
        return PartitionResult(
            assignment=assignment, die_areas=die_areas, cut_nets=cut
        )

    def to_die_netlist(
        self, design: LogicNetlist, result: PartitionResult
    ) -> Netlist:
        """Convert a placed design into the router's die-level netlist."""
        nets: List[Net] = []
        for net, edge in zip(design.nets, design.edges):
            source_die = result.assignment[edge[0]]
            sink_dies = tuple(
                dict.fromkeys(result.assignment[cell] for cell in edge[1:])
            )
            nets.append(Net(name=net.name, source_die=source_die, sink_dies=sink_dies))
        return Netlist(nets)

    # ------------------------------------------------------------------
    def _die_order(self) -> List[int]:
        """Dies grouped FPGA by FPGA so bisection cuts FPGAs first."""
        order: List[int] = []
        for fpga in self.system.fpgas:
            order.extend(fpga.die_indices)
        return order

    def _bisect(
        self,
        design: LogicNetlist,
        cells: List[int],
        dies: Sequence[int],
        assignment: List[int],
    ) -> None:
        if len(dies) == 1:
            for cell in cells:
                assignment[cell] = dies[0]
            return
        if not cells:
            # No cells left for this die subtree; nothing to place.
            return
        half = (len(dies) + 1) // 2
        dies_left, dies_right = dies[:half], dies[half:]

        # Build the sub-hypergraph induced by the cell subset.
        local_index = {cell: i for i, cell in enumerate(cells)}
        local_edges: List[Tuple[int, ...]] = []
        for edge in design.edges:
            members = tuple(local_index[c] for c in edge if c in local_index)
            if len(members) >= 2:
                local_edges.append(members)
        areas = [design.cells[c].area for c in cells]
        total = sum(areas)
        max_area = max(areas)
        share_left = total * len(dies_left) / len(dies)
        share_right = total - share_left
        slack = 1.0 + self.balance_slack
        # One largest cell of extra headroom per side keeps every greedy
        # packing and every single-cell FM move feasible.
        result = fm_bipartition(
            num_cells=len(cells),
            edges=local_edges,
            areas=areas,
            capacities=(
                share_left * slack + max_area + 1e-9,
                share_right * slack + max_area + 1e-9,
            ),
            max_passes=self.max_passes,
        )
        left = [cells[i] for i in range(len(cells)) if result.sides[i] == 0]
        right = [cells[i] for i in range(len(cells)) if result.sides[i] == 1]
        self._bisect(design, left, dies_left, assignment)
        self._bisect(design, right, dies_right, assignment)
