"""Fiduccia–Mattheyses min-cut bipartitioning.

Classic FM with gain buckets: repeated passes move one cell at a time
(locking it), always the highest-gain movable cell whose move keeps both
sides within their area capacities; at the end of a pass the best prefix
of moves is kept.  Passes repeat until no pass improves the cut.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple


@dataclass
class FmResult:
    """Output of FM bipartitioning.

    Attributes:
        sides: per-cell side label (0 or 1).
        cut_size: number of hyperedges spanning both sides.
        passes: improvement passes executed.
        side_areas: total area per side.
    """

    sides: List[int]
    cut_size: int
    passes: int
    side_areas: Tuple[float, float]


def _initial_sides(
    areas: Sequence[float],
    capacities: Tuple[float, float],
    order: Sequence[int],
) -> List[int]:
    """Greedy area-balanced initial assignment following ``order``.

    Prefers the side with the most headroom *among the sides the cell
    fits on*; when neither fits (capacities too tight for this packing
    order) the max-headroom side takes it and the caller's validation
    reports the problem.
    """
    sides = [0] * len(areas)
    fill = [0.0, 0.0]
    for cell in order:
        headroom = [capacities[0] - fill[0], capacities[1] - fill[1]]
        fitting = [s for s in (0, 1) if areas[cell] <= headroom[s] + 1e-9]
        if fitting:
            side = max(fitting, key=lambda s: headroom[s])
        else:
            side = 0 if headroom[0] >= headroom[1] else 1
        sides[cell] = side
        fill[side] += areas[cell]
    return sides


def _compute_gains(
    num_cells: int,
    edges: Sequence[Tuple[int, ...]],
    sides: Sequence[int],
) -> List[int]:
    """FM gains: cut reduction if the cell moved to the other side."""
    gains = [0] * num_cells
    for edge in edges:
        on_side = [0, 0]
        for cell in edge:
            on_side[sides[cell]] += 1
        for cell in edge:
            side = sides[cell]
            if on_side[side] == 1:
                gains[cell] += 1  # moving uncuts (or keeps uncut) the edge
            if on_side[1 - side] == 0:
                gains[cell] -= 1  # moving newly cuts the edge
    return gains


def fm_bipartition(
    num_cells: int,
    edges: Sequence[Tuple[int, ...]],
    areas: Optional[Sequence[float]] = None,
    capacities: Optional[Tuple[float, float]] = None,
    initial_sides: Optional[Sequence[int]] = None,
    max_passes: int = 10,
) -> FmResult:
    """Bipartition cells to minimize the hyperedge cut.

    Args:
        num_cells: number of cells (indices 0..num_cells-1).
        edges: hyperedges as tuples of cell indices.
        areas: per-cell areas (default all 1).
        capacities: per-side area capacities; default splits the total
            area with 10% slack per side.
        initial_sides: starting assignment; default greedy balanced.
        max_passes: maximum improvement passes.

    Returns:
        The best assignment found.

    Raises:
        ValueError: if the capacities cannot hold the total area or the
            initial assignment violates them.
    """
    if areas is None:
        areas = [1.0] * num_cells
    total_area = float(sum(areas))
    max_area = max(areas, default=0.0)
    if capacities is None:
        # Half the area plus one largest cell per side: enough headroom
        # that a perfectly balanced partition can still move single cells.
        slack = total_area / 2 + max_area
        capacities = (slack, slack)
    if capacities[0] + capacities[1] < total_area - 1e-9:
        raise ValueError("side capacities cannot hold the total area")

    if initial_sides is None:
        order = sorted(range(num_cells), key=lambda c: -areas[c])
        sides = _initial_sides(areas, capacities, order)
    else:
        sides = list(initial_sides)
    fill = [0.0, 0.0]
    for cell in range(num_cells):
        fill[sides[cell]] += areas[cell]
    if fill[0] > capacities[0] + 1e-9 or fill[1] > capacities[1] + 1e-9:
        raise ValueError("initial assignment violates side capacities")

    # Cell -> incident edge indices.
    incident: List[List[int]] = [[] for _ in range(num_cells)]
    for edge_index, edge in enumerate(edges):
        for cell in edge:
            incident[cell].append(edge_index)

    def cut_size() -> int:
        cut = 0
        for edge in edges:
            first = sides[edge[0]]
            if any(sides[cell] != first for cell in edge[1:]):
                cut += 1
        return cut

    best_cut = cut_size()
    passes = 0
    for _ in range(max_passes):
        improved = _fm_pass(
            num_cells, edges, incident, areas, capacities, sides, fill
        )
        passes += 1
        new_cut = cut_size()
        if new_cut < best_cut:
            best_cut = new_cut
        if not improved:
            break
    return FmResult(
        sides=sides,
        cut_size=cut_size(),
        passes=passes,
        side_areas=(fill[0], fill[1]),
    )


def _fm_pass(
    num_cells: int,
    edges: Sequence[Tuple[int, ...]],
    incident: Sequence[Sequence[int]],
    areas: Sequence[float],
    capacities: Tuple[float, float],
    sides: List[int],
    fill: List[float],
) -> bool:
    """One FM pass; mutates ``sides``/``fill``.  Returns True if the pass
    found a strictly better prefix (the cut improved)."""
    gains = _compute_gains(num_cells, edges, sides)
    locked = [False] * num_cells
    moves: List[int] = []
    gain_trace: List[int] = []

    # Per-edge side counters, updated incrementally.
    on_side: List[List[int]] = []
    for edge in edges:
        counts = [0, 0]
        for cell in edge:
            counts[sides[cell]] += 1
        on_side.append(counts)

    for _ in range(num_cells):
        # Pick the best movable cell (highest gain, feasible move).
        best_cell = -1
        best_gain = None
        for cell in range(num_cells):
            if locked[cell]:
                continue
            target = 1 - sides[cell]
            if fill[target] + areas[cell] > capacities[target] + 1e-9:
                continue
            if best_gain is None or gains[cell] > best_gain or (
                gains[cell] == best_gain and cell < best_cell
            ):
                best_gain = gains[cell]
                best_cell = cell
        if best_cell < 0:
            break
        cell = best_cell
        source = sides[cell]
        target = 1 - source

        # Update gains of neighbours (standard FM update rules).
        for edge_index in incident[cell]:
            edge = edges[edge_index]
            counts = on_side[edge_index]
            # Before the move.
            if counts[target] == 0:
                for other in edge:
                    if not locked[other]:
                        gains[other] += 1
            elif counts[target] == 1:
                for other in edge:
                    if not locked[other] and sides[other] == target:
                        gains[other] -= 1
            counts[source] -= 1
            counts[target] += 1
            # After the move.
            if counts[source] == 0:
                for other in edge:
                    if not locked[other]:
                        gains[other] -= 1
            elif counts[source] == 1:
                for other in edge:
                    if not locked[other] and sides[other] == source:
                        gains[other] += 1

        sides[cell] = target
        fill[source] -= areas[cell]
        fill[target] += areas[cell]
        locked[cell] = True
        moves.append(cell)
        gain_trace.append(best_gain)

    if not moves:
        return False
    # Keep the best prefix of the move sequence.
    prefix_sum = 0
    best_sum = 0
    best_prefix = 0
    for index, gain in enumerate(gain_trace, start=1):
        prefix_sum += gain
        if prefix_sum > best_sum:
            best_sum = prefix_sum
            best_prefix = index
    # Roll back moves beyond the best prefix.
    for cell in moves[best_prefix:]:
        source = sides[cell]
        target = 1 - source
        sides[cell] = target
        fill[source] -= areas[cell]
        fill[target] += areas[cell]
    return best_sum > 0
