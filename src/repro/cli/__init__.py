"""Command-line entry points.

The unified ``repro`` command (:mod:`repro.cli.unified`) fronts every
task as a subcommand — ``repro route``, ``repro evaluate``, ``repro
generate``, ``repro partition``, ``repro lint``, ``repro resume``.

The historical per-task console scripts remain as shims over the same
modules:

* ``repro-route`` — route a case file (or a generated contest case) and
  write the solution.
* ``repro-eval`` — independently evaluate a solution file: DRC + timing.
* ``repro-gen`` — generate contest-suite case files.
* ``repro-partition`` — partition a hypergraph across dies.
* ``repro-lint`` — run the AST invariant linter (:mod:`repro.lint`).
"""
