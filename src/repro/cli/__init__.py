"""Command-line entry points.

* ``repro-route`` — route a case file (or a generated contest case) and
  write the solution.
* ``repro-eval`` — independently evaluate a solution file: DRC + timing.
* ``repro-gen`` — generate contest-suite case files.
* ``repro-lint`` — run the AST invariant linter (:mod:`repro.lint`).
"""
