"""``repro-eval``: independently check a solution file against its case."""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.drc import DesignRuleChecker
from repro.io import parse_case_file, parse_solution_file
from repro.timing.analysis import TimingAnalyzer
from repro import __version__


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-eval`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-eval",
        description="Evaluate a die-level routing solution: DRC + timing.",
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {__version__}",
    )
    parser.add_argument("case_file", help="the case the solution solves")
    parser.add_argument("solution_file", help="the solution to evaluate")
    parser.add_argument(
        "--worst",
        type=int,
        default=5,
        help="how many of the worst connections to print",
    )
    parser.add_argument(
        "--report",
        action="store_true",
        help="print the full utilization/timing report",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="the solution file is JSON (repro-route --json output)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    system, netlist, delay_model = parse_case_file(args.case_file)
    if args.json:
        from repro.io import read_solution_json

        solution = read_solution_json(args.solution_file, system, netlist)
    else:
        solution = parse_solution_file(args.solution_file, system, netlist)

    report = DesignRuleChecker(system, netlist, delay_model).check(solution)
    print(report.summary())
    for violation in report.violations[:20]:
        print(f"  {violation}")

    if solution.is_complete:
        analyzer = TimingAnalyzer(system, netlist, delay_model)
        timing = analyzer.analyze(solution)
        print(f"critical delay : {timing.critical_delay:.2f}")
        print(f"#CONF          : {solution.conflict_count()}")
        for worst in analyzer.worst_connections(solution, args.worst):
            conn = netlist.connections[worst.connection_index]
            net = netlist.net(conn.net_index)
            print(
                f"  net {net.name} -> die {conn.sink_die}: delay "
                f"{worst.delay:.2f} (SLL {worst.sll_delay:.2f}, TDM "
                f"{worst.tdm_delay:.2f})"
            )
    else:
        missing = len(solution.unrouted_connections())
        print(f"incomplete solution: {missing} unrouted connections")
    if args.report:
        from repro.report import solution_report

        print()
        print(solution_report(solution, delay_model), end="")
    return 0 if report.is_clean and solution.is_complete else 1


if __name__ == "__main__":
    sys.exit(main())
