"""``repro``: the unified command-line interface.

One executable, one subcommand per task::

    repro route --contest-case case02 --drc
    repro evaluate case.txt solution.txt
    repro generate --case case05 --out-dir cases/
    repro partition design.hgr --parts 4
    repro lint src/
    repro resume runs/ckpt_0003_phase2-lr.json
    repro trace trace.jsonl --critical-path --export chrome
    repro perf BENCH_phase2.json bench_out/BENCH_phase2.json

Each subcommand delegates to the matching single-purpose module in
:mod:`repro.cli`; the historical per-task console scripts
(``repro-route``, ``repro-eval``, ...) remain as shims over the same
code.
"""

from __future__ import annotations

import sys
from typing import Callable, Dict, List, Optional

from repro import __version__

#: Subcommand name -> lazy loader of its ``main(argv)`` entry point.
_SUBCOMMANDS: Dict[str, str] = {
    "route": "repro.cli.main",
    "evaluate": "repro.cli.evaluate",
    "generate": "repro.cli.generate",
    "partition": "repro.cli.partition_cli",
    "lint": "repro.cli.lint_cli",
    "resume": "repro.cli.resume_cli",
    "serve": "repro.cli.serve_cli",
    "trace": "repro.cli.trace_cli",
    "perf": "repro.cli.perf_cli",
}

_DESCRIPTIONS: Dict[str, str] = {
    "route": "route a case and report/emit the solution",
    "evaluate": "independently check a solution file (DRC + timing)",
    "generate": "generate contest-suite case files",
    "partition": "partition a hypergraph across dies",
    "lint": "run the AST invariant linter",
    "resume": "continue a checkpointed routing run",
    "serve": "replay a deterministic load through the routing service",
    "trace": "attribute/summarize/export a JSONL trace",
    "perf": "check fresh timings against a committed baseline",
}


def _load(subcommand: str) -> Callable[[Optional[List[str]]], int]:
    module = __import__(_SUBCOMMANDS[subcommand], fromlist=["main"])
    return module.main


def _usage() -> str:
    lines = [
        "usage: repro [--version] <command> [args...]",
        "",
        "commands:",
    ]
    for name in _SUBCOMMANDS:
        lines.append(f"  {name:<10} {_DESCRIPTIONS[name]}")
    lines.append("")
    lines.append("run `repro <command> --help` for command arguments")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point: dispatch ``repro <command> ...``."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help", "help"):
        print(_usage())
        return 0
    if argv[0] == "--version":
        print(f"repro {__version__}")
        return 0
    command, rest = argv[0], argv[1:]
    if command not in _SUBCOMMANDS:
        print(f"repro: unknown command {command!r}", file=sys.stderr)
        print(_usage(), file=sys.stderr)
        return 2
    return _load(command)(rest)


if __name__ == "__main__":
    sys.exit(main())
