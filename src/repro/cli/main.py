"""``repro-route``: route a case and report/emit the solution."""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import (
    DelayModel,
    DesignRuleChecker,
    RouteRequest,
    __version__,
    execute_request,
)
from repro.benchgen import load_case
from repro.io import parse_case_file, write_solution_file


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-route`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-route",
        description=(
            "Synergistic die-level router for multi-FPGA systems "
            "(DAC 2025 reproduction)."
        ),
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {__version__}",
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--case-file", help="path to a case file")
    source.add_argument(
        "--contest-case",
        help="generate a contest case by name (case01..case10) or number",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="scale override for --contest-case (1.0 = full Table II size)",
    )
    parser.add_argument("--output", "-o", help="write the solution to this file")
    parser.add_argument(
        "--router",
        default="ours",
        help="router to run: ours, portfolio, winner1, winner2, winner3, "
        "iseda2024, adapted-fpga-level",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="workers for the parallel stages (paper uses 10 above 200k "
        "nets); the REPRO_WORKERS env var applies only when the config "
        "leaves the count unset",
    )
    parser.add_argument(
        "--parallel-backend",
        choices=["thread", "process"],
        default="thread",
        help="worker pool backend; 'process' routes phase I over spatial "
        "shards in spawned workers (see docs/performance.md)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="spatial shards for the sharded first pass (default: one per "
        "worker, capped at the FPGA count)",
    )
    parser.add_argument(
        "--completion-order-merge",
        action="store_true",
        help="merge shard results in completion order instead of the "
        "deterministic fixed shard order (faster, unstable fingerprints)",
    )
    parser.add_argument(
        "--drc", action="store_true", help="run the design-rule checker afterwards"
    )
    parser.add_argument(
        "--report",
        action="store_true",
        help="print the full utilization/timing report",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="write the solution (and any generated case) as JSON",
    )
    parser.add_argument(
        "--summary-json",
        metavar="PATH",
        help="write a machine-readable result summary to this JSON file",
    )
    parser.add_argument(
        "--svg",
        metavar="PATH",
        help="render the system with live utilization to this SVG file",
    )
    parser.add_argument(
        "--html",
        metavar="PATH",
        help="write a self-contained HTML report to this file",
    )
    parser.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        help="write schema-versioned checkpoints at every barrier; resume "
        "later with `repro resume DIR` (ours router only)",
    )
    parser.add_argument(
        "--precheck",
        action="store_true",
        help="run the feasibility analysis first; abort on an impossibility proof",
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        help="stream instrumentation events (spans, counters, per-iteration "
        "telemetry) to this JSONL file",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="write the schema-versioned JSON run report to this file",
    )
    parser.add_argument(
        "--log-level",
        choices=["debug", "info", "warning", "error"],
        help="enable structured progress logs on stderr at this level",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the per-phase report"
    )
    return parser


def _resolve_router(name: str):
    if name in ("ours", "portfolio"):
        return None  # handled by the main path
    from repro.baselines import all_baseline_routers

    routers = all_baseline_routers()
    if name not in routers:
        choices = ["ours", "portfolio"] + sorted(routers)
        raise SystemExit(f"unknown router {name!r}; choose from {choices}")
    return routers[name]


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    if args.log_level:
        from repro.obs import configure_logging

        configure_logging(args.log_level)
    sink = None
    tracer = None
    if args.trace_out or args.metrics_out:
        from repro.obs import JsonlSink, Tracer

        sink = JsonlSink(args.trace_out) if args.trace_out else None
        tracer = Tracer(sink)
    # Close the sink however the run ends: a crashed route still leaves
    # whatever was traced before the failure durable on disk.
    try:
        if args.case_file:
            system, netlist, delay_model = parse_case_file(args.case_file)
        else:
            case = load_case(args.contest_case, scale=args.scale)
            system, netlist = case.system, case.netlist
            delay_model = DelayModel()

        if args.precheck:
            from repro.analysis import check_feasibility

            feasibility = check_feasibility(system, netlist)
            for line in feasibility.warnings:
                print(f"warning: {line}")
            if feasibility.is_provably_infeasible:
                for line in feasibility.infeasible:
                    print(f"INFEASIBLE: {line}")
                return 2

        baseline_cls = _resolve_router(args.router)
        parallel_knobs = dict(
            num_workers=args.workers,
            parallel_backend=args.parallel_backend,
            num_shards=args.shards,
            deterministic_merge=not args.completion_order_merge,
        )
        # The facade owns RouterConfig normalization (REPRO014): knobs
        # travel as a plain mapping on the request.
        if baseline_cls is None:
            from repro.io import case_to_dict

            request = RouteRequest(
                case=case_to_dict(system, netlist, delay_model),
                config=parallel_knobs,
                checkpoint_dir=args.checkpoint_dir,
            )
        if args.router == "portfolio":
            from repro.api import PortfolioRouter, default_portfolio

            outcome = PortfolioRouter(
                system, netlist, delay_model, default_portfolio(request.config)
            ).route()
            result = outcome.best
            if not args.quiet:
                for row in outcome.table():
                    print(f"  {row}")
        elif baseline_cls is None:
            result = execute_request(request, tracer=tracer)
        else:
            result = baseline_cls(system, netlist, delay_model).route()
    finally:
        if sink is not None:
            sink.close()

    if not args.quiet:
        print(f"router             : {args.router}")
        print(f"nets / connections : {netlist.num_nets} / {netlist.num_connections}")
        print(f"critical delay     : {result.critical_delay:.2f}")
        print(f"SLL conflicts      : {result.conflict_count}")
        fractions = result.phase_times.fractions()
        print(
            f"runtime            : {result.phase_times.total:.2f}s "
            f"(IR {fractions['IR']:.0%}, TA {fractions['TA']:.0%}, "
            f"LG&WA {fractions['LG & WA']:.0%})"
        )
    if args.report:
        from repro.report import solution_report

        print()
        print(solution_report(result.solution, delay_model), end="")
    if args.drc:
        report = DesignRuleChecker(system, netlist, delay_model).check(result.solution)
        print(report.summary())
        if not report.is_clean:
            for violation in report.violations[:20]:
                print(f"  {violation}")
            return 1
    if args.trace_out and not args.quiet:
        print(f"trace written      : {args.trace_out}")
    if args.metrics_out:
        from repro.obs import write_run_report

        write_run_report(
            args.metrics_out,
            result,
            case={
                "source": args.case_file or args.contest_case,
                "router": args.router,
                "nets": netlist.num_nets,
                "connections": netlist.num_connections,
            },
        )
        if not args.quiet:
            print(f"run report written : {args.metrics_out}")
    if args.summary_json:
        from repro.report import write_summary_json

        write_summary_json(args.summary_json, result.solution, delay_model)
        if not args.quiet:
            print(f"summary written    : {args.summary_json}")
    if args.svg:
        from repro.report import write_svg

        write_svg(args.svg, system, result.solution)
        if not args.quiet:
            print(f"svg written        : {args.svg}")
    if args.html:
        from repro.report import write_html

        write_html(args.html, result.solution, delay_model)
        if not args.quiet:
            print(f"html written       : {args.html}")
    if args.output:
        if args.json:
            from repro.io import write_solution_json

            write_solution_json(args.output, result.solution)
        else:
            write_solution_file(args.output, result.solution)
        if not args.quiet:
            print(f"solution written   : {args.output}")
    return 0 if result.conflict_count == 0 else 1


if __name__ == "__main__":
    sys.exit(main())
