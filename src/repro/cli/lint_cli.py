"""``repro-lint``: run the invariant linter over source trees.

Front-end for :mod:`repro.lint`.  Exit status: 0 when no active
findings, 1 when the tree has violations, 2 on usage errors (argparse).

``--format json`` emits the schema-tagged findings document
(``repro.lint.findings/v1``) for CI artifacts; ``--output`` writes it to
a file while keeping the human summary on stdout.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro import __version__
from repro.lint import LintReport, all_rules, lint_paths, resolve_rules


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-lint`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based invariant linter for the repro codebase: "
            "determinism, observability discipline and configuration "
            "hygiene rules (REPRO001..REPRO012)."
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--rules",
        metavar="IDS",
        help="comma-separated rule ids to run (default: all registered rules)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="findings format on stdout (default: text)",
    )
    parser.add_argument(
        "--output",
        metavar="PATH",
        help="also write the JSON findings document to this file",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table (id, scope, rationale) and exit",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the summary line (findings only)",
    )
    return parser


def _render_rule_table() -> str:
    lines = []
    for rule in all_rules():
        scope = ", ".join(rule.include) if rule.include else "everywhere"
        if rule.exclude:
            scope += f" except {', '.join(rule.exclude)}"
        lines.append(f"{rule.rule_id}  {rule.title}")
        lines.append(f"    scope : {scope}")
        lines.append(f"    why   : {rule.rationale}")
        lines.append(f"    fix   : {rule.remedy}")
    return "\n".join(lines)


def _render_text(report: LintReport, quiet: bool) -> str:
    lines = [finding.render() for finding in report.findings]
    if not quiet:
        by_rule = ", ".join(
            f"{rule_id}:{count}" for rule_id, count in report.by_rule().items()
        )
        summary = (
            f"{report.files_scanned} files scanned, "
            f"{len(report.active)} finding(s), "
            f"{len(report.suppressed)} suppressed"
        )
        if by_rule:
            summary += f" [{by_rule}]"
        lines.append(summary)
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(_render_rule_table())
        return 0
    try:
        rules = resolve_rules(args.rules.split(",")) if args.rules else None
    except KeyError as exc:
        print(f"repro-lint: {exc.args[0]}", file=sys.stderr)
        return 2
    report = lint_paths(args.paths, rules=rules)
    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=1, sort_keys=True))
    else:
        rendered = _render_text(report, args.quiet)
        if rendered:
            print(rendered)
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(report.to_dict(), handle, indent=1, sort_keys=True)
        if not args.quiet and args.format != "json":
            print(f"findings written    : {args.output}")
    return 1 if report.active else 0


if __name__ == "__main__":
    sys.exit(main())
