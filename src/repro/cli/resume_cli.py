"""``repro resume``: continue a checkpointed routing run.

The case and config travel inside the checkpoint (see
docs/resilience.md), so the only required argument is the checkpoint
file — or its directory, which resumes from the latest barrier.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import __version__


def build_parser() -> argparse.ArgumentParser:
    """The ``repro resume`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro resume",
        description="Resume a checkpointed routing run, bit-identical to "
        "an uninterrupted one.",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    parser.add_argument(
        "checkpoint",
        help="a checkpoint file, or a checkpoint directory (resumes from "
        "its latest barrier)",
    )
    parser.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        help="checkpoint the resumed run's remaining barriers into this "
        "(fresh) directory",
    )
    parser.add_argument("--output", "-o", help="write the solution to this file")
    parser.add_argument(
        "--json",
        action="store_true",
        help="write the solution as JSON instead of the text format",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="write the schema-versioned JSON run report to this file",
    )
    parser.add_argument(
        "--log-level",
        choices=["debug", "info", "warning", "error"],
        help="enable structured progress logs on stderr at this level",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the result summary"
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    if args.log_level:
        from repro.obs import configure_logging

        configure_logging(args.log_level)
    from repro.api import RouteRequest, execute_request

    request = RouteRequest(
        resume_from=args.checkpoint, checkpoint_dir=args.checkpoint_dir
    )
    result = execute_request(request)
    if not args.quiet:
        print(f"resumed from       : {args.checkpoint}")
        print(f"critical delay     : {result.critical_delay:.2f}")
        print(f"SLL conflicts      : {result.conflict_count}")
        print(f"degraded           : {result.degraded}")
    if args.metrics_out:
        from repro.obs import write_run_report

        write_run_report(
            args.metrics_out, result, case={"source": args.checkpoint}
        )
        if not args.quiet:
            print(f"run report written : {args.metrics_out}")
    if args.output:
        if args.json:
            from repro.io import write_solution_json

            write_solution_json(args.output, result.solution)
        else:
            from repro.io import write_solution_file

            write_solution_file(args.output, result.solution)
        if not args.quiet:
            print(f"solution written   : {args.output}")
    return 0 if result.conflict_count == 0 else 1


if __name__ == "__main__":
    sys.exit(main())
