"""``repro trace``: summarize, attribute and export a JSONL trace.

Front-end for :mod:`repro.obs.profile`.  Given a trace written with
``repro route --trace-out trace.jsonl``, prints the self-time
attribution table (whose total equals the trace's end-to-end wall time),
optionally the critical path, derived cache rates and histogram
quantiles, and can export a Chrome ``trace_event`` or speedscope JSON
flamegraph.

Exit status: 0 on success, 2 on usage/file errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro import __version__
from repro.obs.profile import TraceProfile


def build_parser() -> argparse.ArgumentParser:
    """The ``repro trace`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description=(
            "Analyze a JSONL instrumentation trace: span-tree self-time "
            "attribution, critical path, cache rates, histogram quantiles "
            "and flamegraph export."
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    parser.add_argument(
        "trace",
        help="JSONL trace file (written by `repro route --trace-out`)",
    )
    parser.add_argument(
        "--critical-path",
        action="store_true",
        help="also print the heaviest root-to-leaf span chain",
    )
    parser.add_argument(
        "--export",
        choices=["chrome", "speedscope"],
        help="write a flamegraph document instead of nothing extra: "
        "chrome trace_event JSON (chrome://tracing) or speedscope JSON",
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        help="output path for --export (default: <trace>.<format>.json)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="print the full analysis as one JSON document instead of text",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=0,
        metavar="N",
        help="limit the attribution table to the N heaviest rows",
    )
    return parser


def _format_attribution(profile: TraceProfile, top: int) -> str:
    rows = profile.attribution()
    shown = rows if top <= 0 else rows[: top + 1]  # keep (untracked)
    name_width = max(
        [len("span")] + [len(row.name) for row in shown]
    )
    lines = [
        f"{'span':<{name_width}}  {'count':>6}  {'total_s':>10}  "
        f"{'self_s':>10}  {'self%':>6}  {'errors':>6}",
    ]
    for row in shown:
        lines.append(
            f"{row.name:<{name_width}}  {row.count:>6}  {row.total:>10.4f}  "
            f"{row.self_time:>10.4f}  {row.self_fraction:>6.1%}  "
            f"{row.errors:>6}"
        )
    total_self = sum(row.self_time for row in rows)
    lines.append(
        f"{'total':<{name_width}}  {'':>6}  {'':>10}  {total_self:>10.4f}  "
        f"{'':>6}  {'':>6}"
    )
    lines.append(f"wall time: {profile.wall_seconds:.4f}s")
    return "\n".join(lines)


def _format_critical_path(profile: TraceProfile) -> str:
    path = profile.critical_path()
    if not path:
        return "critical path: (no spans)"
    lines = ["critical path:"]
    for depth, node in enumerate(path):
        lines.append(
            f"{'  ' * depth}-> {node.name}  "
            f"({node.dur:.4f}s total, {node.self_time:.4f}s self)"
        )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    trace_path = Path(args.trace)
    if not trace_path.is_file():
        print(f"repro trace: no such trace file: {trace_path}", file=sys.stderr)
        return 2
    try:
        profile = TraceProfile.from_jsonl(trace_path)
    except (ValueError, KeyError) as exc:
        print(f"repro trace: malformed trace: {exc}", file=sys.stderr)
        return 2

    if args.export:
        if args.export == "chrome":
            document = profile.to_chrome()
            default_name = f"{trace_path.name}.chrome.json"
        else:
            document = profile.to_speedscope(name=trace_path.name)
            default_name = f"{trace_path.name}.speedscope.json"
        out = Path(args.out) if args.out else trace_path.parent / default_name
        out.write_text(json.dumps(document, indent=1))
        # Keep stdout machine-parseable under --json: status goes to stderr.
        status_stream = sys.stderr if args.json else sys.stdout
        print(f"{args.export} export written : {out}", file=status_stream)

    if args.json:
        print(json.dumps(profile.to_dict(), indent=1))
        return 0

    print(
        f"trace: {trace_path}  "
        f"({len(profile.events)} events, {len(profile.spans)} spans)"
    )
    print()
    print(_format_attribution(profile, args.top))
    if args.critical_path:
        print()
        print(_format_critical_path(profile))
    rates = profile.rates()
    if rates:
        print()
        print("derived rates:")
        for name, value in rates.items():
            print(f"  {name:<36} {value:.1%}")
    histograms = profile.quantiles()
    if histograms:
        print()
        print("histograms (sketch quantiles):")
        for name, summary in histograms.items():
            print(
                f"  {name:<24} n={summary.count:<7} p50={summary.p50:.4g} "
                f"p90={summary.p90:.4g} p99={summary.p99:.4g} "
                f"max={summary.maximum:.4g}"
            )
    return 0


if __name__ == "__main__":
    sys.exit(main())
