"""``repro-gen``: generate contest-suite case files."""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.benchgen import case_names, load_case
from repro.io import write_case_file
from repro.timing.delay import DelayModel
from repro import __version__


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-gen`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-gen",
        description=(
            "Generate die-level routing contest cases (Table II statistics)."
        ),
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {__version__}",
    )
    parser.add_argument(
        "cases",
        nargs="*",
        default=[],
        help="case names/numbers to generate (default: all ten)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="scale override (1.0 = full Table II size; default per-case)",
    )
    parser.add_argument(
        "--out-dir", "-d", default="cases", help="output directory (created)"
    )
    parser.add_argument(
        "--stats", action="store_true", help="print the Table II statistics only"
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    names = args.cases if args.cases else case_names()
    out_dir = Path(args.out_dir)
    if not args.stats:
        out_dir.mkdir(parents=True, exist_ok=True)
    header = (
        f"{'case':8s} {'fpgas':>5s} {'dies':>5s} {'sll_e':>6s} {'sll_w':>9s} "
        f"{'tdm_e':>6s} {'tdm_w':>8s} {'nets':>9s} {'conns':>9s}"
    )
    print(header)
    for name in names:
        case = load_case(name, scale=args.scale)
        stats = case.stats()
        print(
            f"{case.spec.name:8s} {stats['fpgas']:5d} {stats['dies']:5d} "
            f"{stats['sll_edges']:6d} {stats['sll_wires']:9d} "
            f"{stats['tdm_edges']:6d} {stats['tdm_wires']:8d} "
            f"{stats['nets']:9d} {stats['connections']:9d}"
        )
        if not args.stats:
            path = out_dir / f"{case.spec.name}.case"
            write_case_file(path, case.system, case.netlist, DelayModel())
    if not args.stats:
        print(f"written to {out_dir}/")
    return 0


if __name__ == "__main__":
    sys.exit(main())
