"""``repro-partition``: partition a flat design onto a case's dies.

Takes a hypergraph (hMETIS ``.hgr``) or generates a synthetic design,
partitions it onto the dies of a case file's system, and emits a new case
file whose netlist is the partitioned design — ready for ``repro-route``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.io import parse_case_file, write_case_file
from repro.partition import DiePartitioner, generate_logic_netlist
from repro.partition.hgr import read_hgr
from repro import __version__


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-partition`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-partition",
        description=(
            "Partition a flat design onto the dies of a multi-FPGA system "
            "and emit a routable case file."
        ),
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {__version__}",
    )
    parser.add_argument(
        "case_file",
        help="case file providing the target system (its nets are replaced)",
    )
    parser.add_argument("output", help="case file to write")
    source = parser.add_mutually_exclusive_group()
    source.add_argument("--hgr", help="hMETIS .hgr design to partition")
    source.add_argument(
        "--synthetic",
        type=int,
        metavar="CELLS",
        help="generate a synthetic clustered design with this many cells",
    )
    parser.add_argument(
        "--seed", type=int, default=2023, help="seed for --synthetic"
    )
    parser.add_argument(
        "--balance-slack",
        type=float,
        default=0.15,
        help="allowed per-die area overfill fraction",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    system, _, delay_model = parse_case_file(args.case_file)
    if args.hgr:
        design = read_hgr(args.hgr)
    else:
        cells = args.synthetic if args.synthetic else 400
        design = generate_logic_netlist(num_cells=cells, seed=args.seed)

    partitioner = DiePartitioner(system, balance_slack=args.balance_slack)
    result = partitioner.partition(design)
    netlist = partitioner.to_die_netlist(design, result)

    print(f"design         : {design.num_cells} cells, {design.num_nets} nets")
    print(
        f"partition      : {result.cut_nets} cut nets "
        f"({result.cut_nets / max(1, design.num_nets):.1%})"
    )
    areas = ", ".join(
        f"{die}:{area:.0f}" for die, area in sorted(result.die_areas.items())
    )
    print(f"die areas      : {areas}")
    print(
        f"die netlist    : {netlist.num_nets} nets, "
        f"{netlist.num_connections} connections"
    )
    write_case_file(args.output, system, netlist, delay_model)
    print(f"case written   : {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
