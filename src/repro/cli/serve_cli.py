"""``repro serve``: drive a deterministic load through the routing service.

Spins up a :class:`repro.serve.RoutingService`, replays the seeded
workload of a :class:`repro.serve.LoadSpec` through it, and reports
throughput, latency quantiles, warm-cache hit rates and the
fingerprint-vs-sequential verdict (docs/serving.md).  ``--check`` turns
the verdict into the exit code, which is how CI's serve-smoke job runs
it.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro import __version__


def build_parser() -> argparse.ArgumentParser:
    """The ``repro serve`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Replay a deterministic request load through the "
        "routing service and report req/s, latency quantiles and warm "
        "cache hit rates.",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    parser.add_argument(
        "--cases",
        default="case02",
        help="comma-separated contest case names the workload mixes "
        "(default: case02)",
    )
    parser.add_argument(
        "--requests", type=int, default=8, help="total requests to issue"
    )
    parser.add_argument(
        "--concurrency", type=int, default=2, help="service worker threads"
    )
    parser.add_argument(
        "--seed", type=int, default=2025, help="workload mix seed"
    )
    parser.add_argument(
        "--priorities",
        default="0",
        help="comma-separated priority levels drawn per request "
        "(default: 0 — no preemption pressure)",
    )
    parser.add_argument(
        "--slo",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-request SLO mapped onto the resilience budget "
        "(late requests degrade instead of failing)",
    )
    parser.add_argument(
        "--cache-entries",
        type=int,
        default=8,
        help="warm-artifact cache LRU bound",
    )
    parser.add_argument(
        "--executor-workers",
        type=int,
        default=1,
        help="threads of the shared phase II executor pool",
    )
    parser.add_argument(
        "--report",
        metavar="PATH",
        help="write the JSON load report to this file",
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        help="stream service telemetry as JSONL trace events to this file",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit nonzero unless: zero failures, warm cache hits > 0, "
        "and every response fingerprint matches its sequential run",
    )
    parser.add_argument(
        "--log-level",
        choices=["debug", "info", "warning", "error"],
        help="enable structured progress logs on stderr at this level",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the summary"
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    if args.log_level:
        from repro.obs import configure_logging

        configure_logging(args.log_level)
    from repro.obs import JsonlSink, Tracer
    from repro.serve import LoadSpec, run_load

    spec = LoadSpec(
        cases=tuple(name.strip() for name in args.cases.split(",") if name.strip()),
        requests=args.requests,
        concurrency=args.concurrency,
        seed=args.seed,
        priorities=tuple(
            int(level) for level in args.priorities.split(",") if level.strip()
        ),
        slo_seconds=args.slo,
        cache_entries=args.cache_entries,
        executor_workers=args.executor_workers,
    )
    sink = JsonlSink(args.trace_out) if args.trace_out else None
    tracer = Tracer(sink)
    try:
        report = run_load(spec, tracer=tracer)
    finally:
        if sink is not None:
            sink.close()

    if not args.quiet:
        print(f"requests           : {report.total} over {', '.join(spec.cases)}")
        print(
            f"status             : {report.ok} ok / {report.degraded} degraded "
            f"/ {report.failed} failed"
        )
        print(f"throughput         : {report.requests_per_second:.2f} req/s")
        print(
            f"latency p50 / p99  : {report.latency_p50:.3f}s / "
            f"{report.latency_p99:.3f}s"
        )
        print(
            f"artifact cache     : {report.cache_hits} hits / "
            f"{report.cache_misses} misses ({report.cache_hit_rate:.0%})"
        )
        print(f"preemptions        : {report.preemptions}")
        print(
            f"fingerprints       : {report.fingerprint_matches} match, "
            f"{len(report.fingerprint_mismatches)} mismatch"
        )
    if args.report:
        from pathlib import Path

        Path(args.report).write_text(
            json.dumps(report.to_dict(), indent=1, sort_keys=True)
        )
        if not args.quiet:
            print(f"load report written: {args.report}")
    if args.trace_out and not args.quiet:
        print(f"trace written      : {args.trace_out}")

    if args.check:
        problems = []
        if report.failed:
            problems.append(f"{report.failed} request(s) failed")
        if report.cache_hits <= 0:
            problems.append("warm-artifact cache never hit")
        if report.fingerprint_mismatches:
            problems.append(
                "fingerprint mismatches: "
                + ", ".join(report.fingerprint_mismatches)
            )
        if report.fingerprint_matches != report.ok:
            problems.append(
                f"only {report.fingerprint_matches} of {report.ok} ok "
                "responses verified against the sequential oracle"
            )
        if problems:
            for line in problems:
                print(f"CHECK FAILED: {line}", file=sys.stderr)
            return 1
        if not args.quiet:
            print("checks             : all passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
