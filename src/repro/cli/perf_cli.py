"""``repro perf``: the perf-regression sentinel as a command.

Front-end for :mod:`repro.obs.sentinel`.  Compares a committed baseline
(``BENCH_*.json`` trajectory or run report) against a freshly measured
document and fails when a wall-time metric slowed down beyond the
tolerance plus the baseline's own sample noise.

Exit status: 0 when no regression, 1 when regressions were flagged,
2 on usage/file errors.  ``make perf`` and the benchmark CI job run
this against the committed baselines.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro import __version__
from repro.obs.sentinel import (
    DEFAULT_MIN_SECONDS,
    DEFAULT_NOISE_FLOOR,
    DEFAULT_TOLERANCE,
    SentinelReport,
    check_regressions,
)


def build_parser() -> argparse.ArgumentParser:
    """The ``repro perf`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-perf",
        description=(
            "Perf-regression sentinel: compare a fresh benchmark "
            "trajectory or run report against a committed baseline and "
            "flag statistically meaningful slowdowns."
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    parser.add_argument(
        "baseline",
        help="committed baseline: BENCH_*.json trajectory or a run report",
    )
    parser.add_argument(
        "current",
        help="freshly measured document of the same shape",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        metavar="RATIO",
        help=f"slowdown ratio that always flags (default: {DEFAULT_TOLERANCE})",
    )
    parser.add_argument(
        "--noise-floor",
        type=float,
        default=DEFAULT_NOISE_FLOOR,
        metavar="FRAC",
        help="minimum relative headroom granted to every metric "
        f"(default: {DEFAULT_NOISE_FLOOR})",
    )
    parser.add_argument(
        "--min-seconds",
        type=float,
        default=DEFAULT_MIN_SECONDS,
        metavar="S",
        help="ignore timings below this many seconds "
        f"(default: {DEFAULT_MIN_SECONDS})",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="print the sentinel report as JSON instead of text",
    )
    parser.add_argument(
        "--output",
        metavar="PATH",
        help="also write the JSON sentinel report to this file",
    )
    return parser


def _render_text(report: SentinelReport) -> str:
    lines = [
        f"compared {report.compared} metric(s), skipped {report.skipped} "
        f"below {report.min_seconds}s "
        f"(tolerance {report.tolerance}x, noise floor {report.noise_floor})"
    ]
    for finding in report.regressions:
        lines.append(f"REGRESSION  {finding.describe()}")
    for finding in report.improvements:
        lines.append(f"improved    {finding.describe()}")
    lines.append("perf sentinel: " + ("OK" if report.ok else "FAIL"))
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    for label, path in (("baseline", args.baseline), ("current", args.current)):
        if not Path(path).is_file():
            print(f"repro perf: no such {label} file: {path}", file=sys.stderr)
            return 2
    try:
        report = check_regressions(
            args.baseline,
            args.current,
            tolerance=args.tolerance,
            noise_floor=args.noise_floor,
            min_seconds=args.min_seconds,
        )
    except (ValueError, json.JSONDecodeError) as exc:
        print(f"repro perf: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report.to_dict(), indent=1))
    else:
        print(_render_text(report))
    if args.output:
        Path(args.output).write_text(json.dumps(report.to_dict(), indent=1))
        if not args.json:
            print(f"sentinel report written : {args.output}")
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
