"""The paper's contribution: the synergistic two-phase die-level router.

Phase I (:mod:`repro.core.initial_routing`) produces a delay-demand-balanced
routing topology; phase II (:mod:`repro.core.lagrangian`,
:mod:`repro.core.legalization`, :mod:`repro.core.wire_assignment`) assigns
TDM ratios and physical wires.  :class:`repro.core.router.SynergisticRouter`
ties the phases together; :class:`repro.core.router.TdmAssigner` exposes
phase II standalone so it can refine any router's topology (the Fig. 5(a)
experiment).
"""

from repro.core.config import RouterConfig
from repro.core.incidence import (
    IncidenceDelta,
    TdmIncidence,
    build_incidence,
    build_reference,
)
from repro.core.ordering import (
    WeightMode,
    estimate_edge_weights,
    floyd_warshall,
    order_connections,
)
from repro.core.initial_routing import InitialRouter
from repro.core.lagrangian import LagrangianTdmAssigner, LrHistory
from repro.core.legalization import TdmLegalizer
from repro.core.wire_assignment import WireAssigner
from repro.core.router import PhaseTimes, RoutingResult, SynergisticRouter, TdmAssigner
from repro.core.eco import EcoResult, EcoRouter
from repro.core.portfolio import PortfolioOutcome, PortfolioRouter, default_portfolio
from repro.core.timing_reroute import TimingDrivenRefiner

__all__ = [
    "EcoResult",
    "EcoRouter",
    "PortfolioOutcome",
    "PortfolioRouter",
    "default_portfolio",
    "IncidenceDelta",
    "InitialRouter",
    "TdmIncidence",
    "TimingDrivenRefiner",
    "build_incidence",
    "build_reference",
    "LagrangianTdmAssigner",
    "LrHistory",
    "PhaseTimes",
    "RouterConfig",
    "RoutingResult",
    "SynergisticRouter",
    "TdmAssigner",
    "TdmLegalizer",
    "WeightMode",
    "WireAssigner",
    "estimate_edge_weights",
    "floyd_warshall",
    "order_connections",
]
