"""Negotiation bookkeeping for the PathFinder-style initial router.

:class:`NegotiationState` tracks, incrementally, which edges each net uses
and how many distinct nets each edge carries (``demand_e``).  Demand counts
*nets*, not connections: two connections of one net sharing an edge consume
a single SLL wire / TDM slot, which is exactly why the µ discount of the
cost model pays off.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set

from repro.route.graph import RoutingGraph


class NegotiationState:
    """Incremental demand tracking during initial routing."""

    def __init__(self, graph: RoutingGraph) -> None:
        self.graph = graph
        #: Number of distinct nets using each edge.
        self.demand: List[int] = [0] * graph.num_edges
        #: Per net: edge -> number of its connections using the edge.
        self._net_edge_count: Dict[int, Dict[int, int]] = {}

    def net_edges(self, net_index: int) -> Dict[int, int]:
        """Edges currently used by a net (edge -> connection count)."""
        return self._net_edge_count.setdefault(net_index, {})

    def add_path(self, net_index: int, path: Sequence[int]) -> None:
        """Account a routed die path of one of the net's connections."""
        counts = self._net_edge_count.setdefault(net_index, {})
        for frm, to in zip(path, path[1:]):
            edge_index = self._edge_of(frm, to)
            previous = counts.get(edge_index, 0)
            counts[edge_index] = previous + 1
            if previous == 0:
                self.demand[edge_index] += 1

    def remove_path(self, net_index: int, path: Sequence[int]) -> None:
        """Reverse :meth:`add_path` for a ripped-up connection."""
        counts = self._net_edge_count.get(net_index)
        if counts is None:
            raise KeyError(f"net {net_index} has no routed paths")
        for frm, to in zip(path, path[1:]):
            edge_index = self._edge_of(frm, to)
            remaining = counts[edge_index] - 1
            if remaining == 0:
                del counts[edge_index]
                self.demand[edge_index] -= 1
            else:
                counts[edge_index] = remaining

    def overflowed_sll_edges(self) -> List[int]:
        """SLL edges whose demand exceeds their capacity."""
        graph = self.graph
        return [
            int(edge_index)
            for edge_index in graph.sll_edge_indices
            if self.demand[edge_index] > graph.capacity[edge_index]
        ]

    def nets_on_edges(self, edge_indices: Iterable[int]) -> Set[int]:
        """Nets using any of the given edges."""
        targets = set(edge_indices)
        return {
            net_index
            for net_index, counts in self._net_edge_count.items()
            if targets.intersection(counts)
        }

    def nets_on_edge(self, edge_index: int) -> List[int]:
        """Nets using one edge (unordered)."""
        return [
            net_index
            for net_index, counts in self._net_edge_count.items()
            if edge_index in counts
        ]

    def overuse(self, edge_index: int) -> int:
        """Demand beyond capacity on one edge (0 when legal)."""
        return max(
            0, self.demand[edge_index] - int(self.graph.capacity[edge_index])
        )

    def total_overflow(self) -> int:
        """Sum of SLL overuse over all edges (the #CONF metric)."""
        graph = self.graph
        return sum(
            max(0, self.demand[int(e)] - int(graph.capacity[e]))
            for e in graph.sll_edge_indices
        )

    def overuse_histogram(self) -> Dict[int, int]:
        """Histogram of SLL overuse: overuse value -> number of edges.

        Only overflowed edges appear (overuse ``>= 1``); an empty dict
        means the topology is legal.  Cheap enough to emit once per
        negotiation round as telemetry.
        """
        histogram: Dict[int, int] = {}
        graph = self.graph
        for edge_index in graph.sll_edge_indices:
            over = self.demand[int(edge_index)] - int(graph.capacity[edge_index])
            if over > 0:
                histogram[over] = histogram.get(over, 0) + 1
        return histogram

    def _edge_of(self, frm: int, to: int) -> int:
        edge = self.graph.system.edge_between(frm, to)
        if edge is None:
            raise ValueError(f"dies {frm} and {to} are not adjacent")
        return edge.index
