"""Negotiation bookkeeping for the PathFinder-style initial router.

:class:`NegotiationState` tracks, incrementally, which edges each net uses
and how many distinct nets each edge carries (``demand_e``).  Demand counts
*nets*, not connections: two connections of one net sharing an edge consume
a single SLL wire / TDM slot, which is exactly why the µ discount of the
cost model pays off.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.route.graph import RoutingGraph


class NegotiationState:
    """Incremental demand tracking during initial routing."""

    def __init__(self, graph: RoutingGraph) -> None:
        self.graph = graph
        #: Number of distinct nets using each edge.
        self.demand: List[int] = [0] * graph.num_edges
        #: Per net: edge -> number of its connections using the edge.
        self._net_edge_count: Dict[int, Dict[int, int]] = {}
        #: Edges whose demand changed since the last :meth:`drain_dirty`
        #: (consumed by the routing kernel to refresh its cost vector).
        self._dirty: Set[int] = set()
        #: Edge lists memoized per distinct die path (paths repeat
        #: heavily across connections; the lists are never mutated).
        self._path_edges: Dict[Tuple[int, ...], List[int]] = {}
        # Plain-int mirrors of the graph's numpy arrays: the per-round
        # overflow scans index these instead of numpy scalars.
        self._sll_edges: List[int] = [int(e) for e in graph.sll_edge_indices]
        self._capacity: List[int] = [int(c) for c in graph.capacity]

    def net_edges(self, net_index: int) -> Dict[int, int]:
        """Edges currently used by a net (edge -> connection count)."""
        return self._net_edge_count.setdefault(net_index, {})

    def net_edges_view(self, net_index: int) -> Optional[Dict[int, int]]:
        """Like :meth:`net_edges`, but ``None`` for a net with no edges.

        Read-only fast path for the router's inner loop: it never
        allocates the per-net dict, which :meth:`net_edges` would create
        for every not-yet-routed net.
        """
        return self._net_edge_count.get(net_index)

    def _edges_of_path(self, path: Sequence[int]) -> List[int]:
        key = tuple(path)
        edges = self._path_edges.get(key)
        if edges is None:
            edge_of = self.graph.edge_index_between
            edges = [edge_of(frm, to) for frm, to in zip(path, path[1:])]
            self._path_edges[key] = edges
        return edges

    def add_path(self, net_index: int, path: Sequence[int]) -> None:
        """Account a routed die path of one of the net's connections."""
        counts = self._net_edge_count.setdefault(net_index, {})
        for edge_index in self._edges_of_path(path):
            previous = counts.get(edge_index, 0)
            counts[edge_index] = previous + 1
            if previous == 0:
                self.demand[edge_index] += 1
                self._dirty.add(edge_index)

    def add_hops(self, net_index: int, hops: Iterable[Tuple[int, int]]) -> None:
        """Account a routed path given as ``(edge_index, direction)`` hops.

        Same bookkeeping as :meth:`add_path` without the die-pair lookup;
        used when the caller already holds the hop list (e.g. from
        :meth:`repro.route.solution.RoutingSolution.path_hops`).
        """
        counts = self._net_edge_count.setdefault(net_index, {})
        for edge_index, _ in hops:
            previous = counts.get(edge_index, 0)
            counts[edge_index] = previous + 1
            if previous == 0:
                self.demand[edge_index] += 1
                self._dirty.add(edge_index)

    def remove_path(self, net_index: int, path: Sequence[int]) -> None:
        """Reverse :meth:`add_path` for a ripped-up connection."""
        counts = self._net_edge_count.get(net_index)
        if counts is None:
            raise KeyError(f"net {net_index} has no routed paths")
        for edge_index in self._edges_of_path(path):
            remaining = counts[edge_index] - 1
            if remaining == 0:
                del counts[edge_index]
                self.demand[edge_index] -= 1
                self._dirty.add(edge_index)
            else:
                counts[edge_index] = remaining

    def drain_dirty(self) -> Set[int]:
        """Edges whose demand changed since the last drain (and reset)."""
        dirty = self._dirty
        self._dirty = set()
        return dirty

    def overflowed_sll_edges(self) -> List[int]:
        """SLL edges whose demand exceeds their capacity."""
        demand = self.demand
        capacity = self._capacity
        return [
            edge_index
            for edge_index in self._sll_edges
            if demand[edge_index] > capacity[edge_index]
        ]

    def nets_on_edges(self, edge_indices: Iterable[int]) -> Set[int]:
        """Nets using any of the given edges."""
        targets = set(edge_indices)
        return {
            net_index
            for net_index, counts in self._net_edge_count.items()
            if targets.intersection(counts)
        }

    def nets_on_edge(self, edge_index: int) -> List[int]:
        """Nets using one edge (unordered)."""
        return [
            net_index
            for net_index, counts in self._net_edge_count.items()
            if edge_index in counts
        ]

    def overuse(self, edge_index: int) -> int:
        """Demand beyond capacity on one edge (0 when legal)."""
        return max(0, self.demand[edge_index] - self._capacity[edge_index])

    def total_overflow(self) -> int:
        """Sum of SLL overuse over all edges (the #CONF metric)."""
        demand = self.demand
        capacity = self._capacity
        return sum(
            max(0, demand[e] - capacity[e]) for e in self._sll_edges
        )

    def overuse_histogram(self) -> Dict[int, int]:
        """Histogram of SLL overuse: overuse value -> number of edges.

        Only overflowed edges appear (overuse ``>= 1``); an empty dict
        means the topology is legal.  Cheap enough to emit once per
        negotiation round as telemetry.
        """
        histogram: Dict[int, int] = {}
        demand = self.demand
        capacity = self._capacity
        for edge_index in self._sll_edges:
            over = demand[edge_index] - capacity[edge_index]
            if over > 0:
                histogram[over] = histogram.get(over, 0) + 1
        return histogram

    def _edge_of(self, frm: int, to: int) -> int:
        return self.graph.edge_index_between(frm, to)
