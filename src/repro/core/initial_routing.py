"""Phase I: delay-demand-balanced initial routing (Section III-B).

The router decomposes every net into connections, orders them by
Floyd–Warshall routing weight (descending; fewer-fanout nets first on
ties), and routes each with Dijkstra under the SLL/TDM cost model of
:mod:`repro.core.cost`.  Because SLL edges have hard capacities, the first
pass may overflow; negotiation rounds then raise the history cost of the
overflowed edges, rip up every net crossing them, and reroute until the
topology is overlap-free (or the round budget is exhausted — the remaining
overflow is reported, never silently dropped).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from repro.arch.system import MultiFpgaSystem
from repro.core.config import RouterConfig
from repro.core.cost import EdgeCostModel
from repro.core.ordering import estimate_edge_weights, floyd_warshall, order_connections
from repro.core.pathfinder import NegotiationState
from repro.netlist.netlist import Netlist
from repro.obs import Tracer, get_logger
from repro.route.dijkstra import SearchStats, dijkstra_path, extract_path
from repro.route.graph import RoutingGraph
from repro.route.kernel import RoutingKernel
from repro.route.solution import RoutingSolution
from repro.timing.delay import DelayModel

logger = get_logger(__name__)


@dataclass
class InitialRoutingStats:
    """Diagnostics of one initial-routing run.

    ``degraded`` is set when a wall-clock budget cut negotiation short
    (docs/resilience.md); the remaining overflow is then still reported
    in ``final_overflow``.
    """

    negotiation_rounds: int = 0
    connections_routed: int = 0
    reroutes: int = 0
    final_overflow: int = 0
    weight_mode: str = ""
    history: List[int] = field(default_factory=list)
    degraded: bool = False

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (checkpoint payloads)."""
        return {
            "negotiation_rounds": self.negotiation_rounds,
            "connections_routed": self.connections_routed,
            "reroutes": self.reroutes,
            "final_overflow": self.final_overflow,
            "weight_mode": self.weight_mode,
            "history": list(self.history),
            "degraded": self.degraded,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "InitialRoutingStats":
        """Inverse of :meth:`to_dict`."""
        return cls(
            negotiation_rounds=int(data["negotiation_rounds"]),
            connections_routed=int(data["connections_routed"]),
            reroutes=int(data["reroutes"]),
            final_overflow=int(data["final_overflow"]),
            weight_mode=str(data["weight_mode"]),
            history=[int(v) for v in data["history"]],
            degraded=bool(data.get("degraded", False)),
        )


class InitialRouter:
    """The paper's phase I router.

    Args:
        artifacts: optional warm per-topology state
            (:class:`repro.core.artifacts.RoutingArtifacts`, built for
            *this* case and pricing config).  When given, ``ir.prepare``
            reuses the prebuilt graph/weights/ordering instead of
            recomputing them, and kernel runs are seeded with the
            pristine-cost SSSP trees — bit-identical to a cold run,
            just cheaper.
    """

    def __init__(
        self,
        system: MultiFpgaSystem,
        netlist: Netlist,
        delay_model: Optional[DelayModel] = None,
        config: Optional[RouterConfig] = None,
        tracer: Optional[Tracer] = None,
        artifacts: Optional[Any] = None,
    ) -> None:
        netlist.validate_against(system.num_dies)
        self.system = system
        self.netlist = netlist
        self.delay_model = delay_model if delay_model is not None else DelayModel()
        self.config = config if config is not None else RouterConfig()
        self.tracer = tracer if tracer is not None else Tracer()
        self.artifacts = artifacts
        self.stats = InitialRoutingStats()
        self._search = SearchStats()
        self._kernel: Optional[RoutingKernel] = None

    def route(
        self,
        *,
        resume: Optional[Mapping[str, Any]] = None,
        checkpoint: Optional[Any] = None,
        deadline: Optional[float] = None,
    ) -> RoutingSolution:
        """Produce an overlap-free (when feasible) routing topology.

        Args:
            resume: a ``phase1.round`` checkpoint payload
                (docs/resilience.md); the first pass is skipped, the
                checkpointed paths/history are restored and negotiation
                continues at the next round — bit-identical to never
                having stopped.
            checkpoint: duck-typed writer with ``save(barrier, payload)``
                (e.g. :class:`repro.resilience.CheckpointManager`);
                called after connection ordering, after every
                negotiation round, and on completion.
            deadline: wall-clock budget as a ``tracer.elapsed()`` value;
                checked at round boundaries — when exceeded, negotiation
                stops with the best-so-far topology and
                ``stats.degraded`` set.
        """
        netlist = self.netlist
        tracer = self.tracer
        with tracer.span("ir.prepare"):
            if self.artifacts is not None:
                # Warm path: the artifacts were computed with exactly the
                # functions below (repro.core.artifacts.build_artifacts),
                # so every value is bit-identical to the cold path.
                graph = self.artifacts.graph
                weights = self.artifacts.base_weights
                self.stats.weight_mode = self.artifacts.weight_mode
                dist = self.artifacts.dist
                order = list(self.artifacts.order)
                rank = dict(self.artifacts.rank)
                tracer.add("ir.warm_prepares")
            else:
                graph = RoutingGraph(self.system)
                weights = estimate_edge_weights(
                    graph, netlist, self.config.weight_mode
                )
                self.stats.weight_mode = (
                    "delay"
                    if weights[graph.is_tdm].max(initial=0) > 1
                    else "congestion"
                )
                dist = floyd_warshall(graph, weights)
                order = order_connections(netlist, dist)
                rank = {conn_index: pos for pos, conn_index in enumerate(order)}

        state = NegotiationState(graph)
        cost_model = EdgeCostModel(graph, self.delay_model, self.config, weights)
        paths: List[Optional[List[int]]] = [None] * netlist.num_connections
        start_round = 0
        if resume is not None:
            # Restore the post-round snapshot *before* the kernel prices
            # anything: its initial cost vector reads demand and history.
            history = resume["history"]
            if len(history) != graph.num_edges:
                raise ValueError(
                    f"checkpoint has {len(history)} history entries, "
                    f"graph has {graph.num_edges} edges"
                )
            cost_model.history[:] = [float(h) for h in history]
            for conn_index, path in enumerate(resume["paths"]):
                if path is not None:
                    dies = [int(d) for d in path]
                    paths[conn_index] = dies
                    state.add_path(
                        netlist.connections[conn_index].net_index, dies
                    )
            self.stats = InitialRoutingStats.from_dict(resume["stats"])
            start_round = int(resume["round"]) + 1
        if self.config.use_kernel:
            # Seed trees are priced at zero demand/history, which only a
            # fresh run starts from; a resumed run restores state first.
            seed_trees = (
                self.artifacts.seed_trees
                if self.artifacts is not None and resume is None
                else None
            )
            self._kernel = RoutingKernel(
                graph,
                cost_model,
                state,
                search_stats=self._search,
                seed_trees=seed_trees,
            )

        if resume is None:
            if checkpoint is not None:
                checkpoint.save(
                    "phase1.ordering",
                    {"order": list(order), "weight_mode": self.stats.weight_mode},
                )
            self._first_pass(order, graph, state, cost_model, paths)

        net_weight = self._net_routing_weights(dist)
        with tracer.span("ir.negotiation"):
            for round_index in range(start_round, self.config.max_reroute_iterations):
                if deadline is not None and tracer.elapsed() > deadline:
                    self.stats.degraded = True
                    logger.warning(
                        "phase I budget exhausted before round %d; keeping "
                        "best-so-far topology (overflow %d)",
                        round_index,
                        state.total_overflow(),
                    )
                    break
                overflowed = state.overflowed_sll_edges()
                overflow = state.total_overflow()
                self.stats.history.append(overflow)
                if tracer.enabled:
                    tracer.event(
                        "ir.iteration",
                        iteration=round_index,
                        overflow=overflow,
                        overflowed_edges=len(overflowed),
                        overuse_histogram=state.overuse_histogram(),
                    )
                if not overflowed:
                    break
                self.stats.negotiation_rounds = round_index + 1
                cost_model.add_history(overflowed)
                victim_nets = self._select_victims(state, overflowed, net_weight)
                victim_conns = sorted(
                    (
                        conn_index
                        for net_index in victim_nets
                        for conn_index in netlist.connection_indices_of(net_index)
                        if paths[conn_index] is not None
                    ),
                    key=lambda conn_index: rank[conn_index],
                )
                logger.debug(
                    "negotiation round %d: overflow %d on %d edges, "
                    "ripping %d nets (%d connections)",
                    round_index,
                    overflow,
                    len(overflowed),
                    len(victim_nets),
                    len(victim_conns),
                )
                tracer.add("ir.ripped_nets", len(victim_nets))
                tracer.add("ir.ripped_connections", len(victim_conns))
                for conn_index in victim_conns:
                    conn = netlist.connections[conn_index]
                    state.remove_path(conn.net_index, paths[conn_index])
                    paths[conn_index] = None
                if self._kernel is not None and self.config.batched_negotiation:
                    # Freeze the round's costs once, post-rip-up: victims
                    # sharing a source die then route off one cached tree.
                    self._kernel.sync()
                    for conn_index in victim_conns:
                        paths[conn_index] = self._route_frozen(conn_index, state)
                        self.stats.reroutes += 1
                else:
                    for conn_index in victim_conns:
                        paths[conn_index] = self._route_connection(
                            conn_index, graph, state, cost_model
                        )
                        self.stats.reroutes += 1
                if checkpoint is not None:
                    checkpoint.save(
                        "phase1.round",
                        self._round_payload(round_index, paths, cost_model),
                    )

        self.stats.final_overflow = state.total_overflow()
        if self._kernel is not None:
            self._kernel.publish_stats(tracer)
        tracer.add("ir.connections_routed", self.stats.connections_routed)
        tracer.add("ir.reroutes", self.stats.reroutes)
        tracer.add("dijkstra.searches", self._search.searches)
        tracer.add("dijkstra.pops", self._search.pops)
        tracer.add("dijkstra.relaxations", self._search.relaxations)
        tracer.gauge("ir.negotiation_rounds", self.stats.negotiation_rounds)
        tracer.gauge("ir.final_overflow", self.stats.final_overflow)
        logger.info(
            "phase I done: %d connections, %d reroutes over %d rounds, "
            "final overflow %d (%s weights)",
            self.stats.connections_routed,
            self.stats.reroutes,
            self.stats.negotiation_rounds,
            self.stats.final_overflow,
            self.stats.weight_mode,
        )
        if checkpoint is not None:
            checkpoint.save(
                "phase1.done",
                self._round_payload(self.stats.negotiation_rounds, paths, cost_model),
            )

        solution = RoutingSolution(self.system, netlist)
        for conn_index, path in enumerate(paths):
            if path is not None:
                solution.set_path(conn_index, path)
        return solution

    # ------------------------------------------------------------------
    def _round_payload(
        self,
        round_index: int,
        paths: List[Optional[List[int]]],
        cost_model: EdgeCostModel,
    ) -> Dict[str, Any]:
        """Checkpoint payload capturing the negotiation loop state."""
        return {
            "round": round_index,
            "paths": [list(p) if p is not None else None for p in paths],
            "history": list(cost_model.history),
            "stats": self.stats.to_dict(),
        }

    # ------------------------------------------------------------------
    def _first_pass(
        self,
        order: List[int],
        graph: RoutingGraph,
        state: NegotiationState,
        cost_model: EdgeCostModel,
        paths: List[Optional[List[int]]],
    ) -> None:
        """Route every connection once (Steiner / batched / per-connection)."""
        with self.tracer.span("ir.first_pass"):
            order = self._steiner_first_pass(order, graph, state, cost_model, paths)
            if self.config.initial_batch_size:
                self._batched_first_pass(order, graph, state, cost_model, paths)
            elif self._kernel is not None:
                if not self._sharded_first_pass(order, state, cost_model, paths):
                    self._route_ordered(order, state, paths)
            else:
                for conn_index in order:
                    paths[conn_index] = self._route_connection(
                        conn_index, graph, state, cost_model
                    )
                    self.stats.connections_routed += 1

    def _route_ordered(
        self,
        order: List[int],
        state: NegotiationState,
        paths: List[Optional[List[int]]],
    ) -> None:
        """Kernel-exact per-connection pass over ``order``.

        Inlined :meth:`_route_connection`: this loop runs once per
        connection and the call/attribute overhead is measurable at
        case07 scale.
        """
        kernel = self._kernel
        sync = kernel.sync
        search = kernel.route
        net_edges_view = state.net_edges_view
        add_path = state.add_path
        connections = self.netlist.connections
        for conn_index in order:
            conn = connections[conn_index]
            sync()
            path = search(
                conn.source_die,
                conn.sink_die,
                net_edges_view(conn.net_index),
            )
            if path is None:
                raise RuntimeError(
                    f"connection {conn_index} (die {conn.source_die} "
                    f"-> {conn.sink_die}) is unroutable: system "
                    "graph disconnected"
                )
            add_path(conn.net_index, path)
            paths[conn_index] = path
        self.stats.connections_routed += len(order)

    # ------------------------------------------------------------------
    def _sharded_first_pass(
        self,
        order: List[int],
        state: NegotiationState,
        cost_model: EdgeCostModel,
        paths: List[Optional[List[int]]],
    ) -> bool:
        """Route the first pass over spatial shards when configured.

        Engages when the config opts in (``parallel_backend="process"``
        or an explicit ``num_shards``) and the system/plan can actually
        shard (≥2 FPGAs, ≥2 derived shards, at least one shard-interior
        connection); returns False otherwise so the caller falls back to
        the sequential pass.

        The schedule is boundary-first: connections of shard-spanning
        nets route on the coordinator in global order, the resulting
        pricing state is published in a shared-memory arena, and every
        shard's interior connections route concurrently in workers
        seeded from that snapshot (see :mod:`repro.parallel.sharding`
        for why this is scheduling-independent).  With
        ``deterministic_merge`` the shard results are applied in shard
        order; any SLL overuse the snapshots hid is healed by the
        negotiation rounds that follow, like ordinary first-pass
        overflow.
        """
        from repro.parallel import (
            ParallelExecutor,
            SharedRoutingArena,
            build_shard_tasks,
            plan_shards,
            resolve_workers,
            route_shard_task,
        )
        from repro.partition.die_shards import derive_die_shards

        config = self.config
        if config.parallel_backend != "process" and config.num_shards is None:
            return False
        if self.system.num_fpgas < 2 or not order:
            return False
        workers, _ = resolve_workers(config.num_workers)
        num_shards = (
            config.num_shards if config.num_shards is not None else workers
        )
        if num_shards < 2:
            return False
        tracer = self.tracer
        with tracer.span("ir.shard_plan"):
            die_shards = derive_die_shards(self.system, num_shards, self.netlist)
            plan = plan_shards(self.netlist, die_shards, order)
        if die_shards.num_shards < 2 or plan.num_interior == 0:
            logger.info(
                "sharded first pass disengaged: %d shards, %d interior "
                "connections — routing sequentially",
                die_shards.num_shards,
                plan.num_interior,
            )
            return False
        tracer.add("shard.count", die_shards.num_shards)
        tracer.add("shard.interior_connections", plan.num_interior)
        tracer.add("shard.boundary_connections", len(plan.boundary))
        logger.info(
            "sharded first pass: %d shards over %d FPGAs, %d boundary + "
            "%d interior connections, %d workers (%s backend)",
            die_shards.num_shards,
            self.system.num_fpgas,
            len(plan.boundary),
            plan.num_interior,
            workers,
            config.parallel_backend,
        )

        # Boundary nets first, in global order — exactly the prefix the
        # sequential pass would route if the order were boundary-first.
        self._route_ordered(list(plan.boundary), state, paths)

        kernel = self._kernel
        kernel.sync()
        arena = SharedRoutingArena.create(kernel.cost_vec, state.demand)
        try:
            tasks = build_shard_tasks(
                plan,
                self.netlist,
                self.system,
                self.delay_model,
                config.to_dict(),
                cost_model.base_weights,
                arena.spec,
            )
            with tracer.span(
                "ir.shard_route",
                shards=len(tasks),
                workers=workers,
                backend=config.parallel_backend,
            ):
                with ParallelExecutor(
                    workers,
                    tracer=tracer,
                    backend=config.parallel_backend,
                    max_retries=config.worker_max_retries,
                    retry_backoff=config.worker_retry_backoff_seconds,
                ) as executor:
                    if config.deterministic_merge:
                        results = executor.map(route_shard_task, tasks)
                    else:
                        results = executor.map_unordered(route_shard_task, tasks)
        finally:
            arena.close()
            arena.unlink()

        connections = self.netlist.connections
        add_path = state.add_path
        kernel_stats = kernel.stats
        search = self._search
        for result in results:
            for conn_index, die_path in result.paths:
                path = list(die_path)
                add_path(connections[conn_index].net_index, path)
                paths[conn_index] = path
            search.searches += result.search_stats["searches"]
            search.pops += result.search_stats["pops"]
            search.relaxations += result.search_stats["relaxations"]
            kernel_stats.tree_hits += result.kernel_stats["tree_hits"]
            kernel_stats.tree_misses += result.kernel_stats["tree_misses"]
            kernel_stats.epoch_bumps += result.kernel_stats["epoch_bumps"]
            kernel_stats.overlay_searches += result.kernel_stats[
                "overlay_searches"
            ]
        self.stats.connections_routed += plan.num_interior
        tracer.gauge("shard.merge_overflow", float(state.total_overflow()))
        return True

    # ------------------------------------------------------------------
    def _steiner_first_pass(
        self,
        order: List[int],
        graph: RoutingGraph,
        state: NegotiationState,
        cost_model: EdgeCostModel,
        paths: List[Optional[List[int]]],
    ) -> List[int]:
        """Route high-fanout nets as whole Steiner trees (optional).

        Nets with at least ``steiner_fanout_threshold`` crossing sinks are
        routed atomically under the Eq. 2 cost model, in the order their
        first connection appears; their connections are removed from the
        per-connection order, which is returned.
        """
        threshold = self.config.steiner_fanout_threshold
        if threshold is None:
            return order
        from repro.route.steiner import steiner_tree_paths

        netlist = self.netlist
        demand = state.demand
        cost = cost_model.cost

        def edge_cost(edge_index: int, frm: int, to: int) -> float:
            return cost(edge_index, demand[edge_index], False)

        routed_nets = set()
        remaining: List[int] = []
        for conn_index in order:
            net_index = netlist.connections[conn_index].net_index
            net = netlist.net(net_index)
            if len(net.crossing_sink_dies) < threshold:
                remaining.append(conn_index)
                continue
            if net_index in routed_nets:
                continue
            routed_nets.add(net_index)
            tree = steiner_tree_paths(
                graph.adjacency, net.source_die, net.crossing_sink_dies, edge_cost
            )
            for conn in netlist.connections_of(net_index):
                path = tree[conn.sink_die]
                paths[conn.index] = path
                state.add_path(net_index, path)
                self.stats.connections_routed += 1
        return remaining

    # ------------------------------------------------------------------
    def _batched_first_pass(
        self,
        order: List[int],
        graph: RoutingGraph,
        state: NegotiationState,
        cost_model: EdgeCostModel,
        paths: List[Optional[List[int]]],
    ) -> None:
        """Wave-based first pass: one Dijkstra per source die per wave.

        Costs are frozen at the start of each wave (µ and the wave's own
        demand growth are ignored until the next wave), so large batches
        trade quality for throughput; the negotiation rounds and the
        timing-driven loop that follow are exact either way.

        With the kernel enabled the wave freeze is simply "don't sync
        until the wave commits": the epoch-keyed tree cache then shares
        one SSSP tree per distinct source die per wave.  The closure
        fallback keeps the same semantics with an explicit demand
        snapshot (one buffer reused across waves).
        """
        from repro.route.dijkstra import dijkstra_all

        netlist = self.netlist
        batch = self.config.initial_batch_size
        kernel = self._kernel
        if kernel is not None:
            for start in range(0, len(order), batch):
                kernel.sync()
                for conn_index in order[start : start + batch]:
                    conn = netlist.connections[conn_index]
                    _, prev = kernel.tree(conn.source_die)
                    path = extract_path(prev, conn.source_die, conn.sink_die)
                    paths[conn_index] = path
                    state.add_path(conn.net_index, path)
                    self.stats.connections_routed += 1
            return

        cost = cost_model.cost
        # One snapshot buffer reused across waves: the whole wave prices
        # edges identically (committing paths mid-wave would skew later
        # sources), without reallocating a demand copy per wave.
        snapshot = [0] * graph.num_edges

        def edge_cost(edge_index: int, frm: int, to: int) -> float:
            return cost(edge_index, snapshot[edge_index], False)

        for start in range(0, len(order), batch):
            wave = order[start : start + batch]
            snapshot[:] = state.demand
            trees = {}
            for conn_index in wave:
                source = netlist.connections[conn_index].source_die
                if source not in trees:
                    _, prev = dijkstra_all(
                        graph.adjacency, source, edge_cost, stats=self._search
                    )
                    trees[source] = prev
            for conn_index in wave:
                conn = netlist.connections[conn_index]
                path = extract_path(
                    trees[conn.source_die], conn.source_die, conn.sink_die
                )
                paths[conn_index] = path
                state.add_path(conn.net_index, path)
                self.stats.connections_routed += 1

    # ------------------------------------------------------------------
    def _net_routing_weights(self, dist) -> List[float]:
        """Per-net routing weight: the largest of its connections' weights."""
        weights = [0.0] * self.netlist.num_nets
        dist_rows = dist.tolist()
        for conn in self.netlist.connections:
            weight = dist_rows[conn.source_die][conn.sink_die]
            if weight > weights[conn.net_index]:
                weights[conn.net_index] = weight
        return weights

    def _select_victims(
        self,
        state: NegotiationState,
        overflowed: List[int],
        net_weight: List[float],
    ) -> set:
        """Choose which nets to rip up from the overflowed SLL edges.

        Per edge, only ``ceil(ripup_factor * overuse)`` nets move — those
        with the smallest routing weight (the easiest to detour), keeping
        long critical nets on their established paths.
        """
        factor = self.config.ripup_factor
        victims = set()
        for edge_index in overflowed:
            overuse = state.overuse(edge_index)
            nets = state.nets_on_edge(edge_index)
            if factor == float("inf"):
                victims.update(nets)
                continue
            quota = int(math.ceil(factor * overuse))
            # sorted(), not .sort(): NegotiationState may hand out
            # references to its internals, which must stay unordered.
            ranked = sorted(nets, key=lambda n: (net_weight[n], n))
            victims.update(ranked[:quota])
        return victims

    def _route_connection(
        self,
        conn_index: int,
        graph: RoutingGraph,
        state: NegotiationState,
        cost_model: EdgeCostModel,
    ) -> List[int]:
        """Dijkstra one connection under the current negotiated costs."""
        conn = self.netlist.connections[conn_index]
        kernel = self._kernel
        if kernel is not None:
            kernel.sync()
            path = kernel.route(
                conn.source_die,
                conn.sink_die,
                state.net_edges_view(conn.net_index),
            )
        else:
            net_edges = state.net_edges(conn.net_index)
            demand = state.demand
            cost = cost_model.cost

            def edge_cost(edge_index: int, frm: int, to: int) -> float:
                return cost(edge_index, demand[edge_index], edge_index in net_edges)

            path = dijkstra_path(
                graph.adjacency,
                conn.source_die,
                conn.sink_die,
                edge_cost,
                stats=self._search,
            )
        if path is None:
            raise RuntimeError(
                f"connection {conn_index} (die {conn.source_die} -> "
                f"{conn.sink_die}) is unroutable: system graph disconnected"
            )
        state.add_path(conn.net_index, path)
        return path

    def _route_frozen(self, conn_index: int, state: NegotiationState) -> List[int]:
        """Route one victim under the kernel's frozen round costs.

        Like :meth:`_route_connection` but without the per-connection
        cost sync: the caller froze the epoch for the whole round, so
        same-source victims share one cached SSSP tree (the µ overlay,
        when the net still holds edges, is still applied per net).
        """
        conn = self.netlist.connections[conn_index]
        path = self._kernel.route(
            conn.source_die,
            conn.sink_die,
            state.net_edges_view(conn.net_index),
            prefer_tree=True,
        )
        if path is None:
            raise RuntimeError(
                f"connection {conn_index} (die {conn.source_die} -> "
                f"{conn.sink_die}) is unroutable: system graph disconnected"
            )
        state.add_path(conn.net_index, path)
        return path
