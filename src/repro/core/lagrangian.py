"""Lagrangian-relaxation-based initial TDM ratio assignment (Section III-C).

The primal problem (Eq. 3) minimizes the critical connection delay subject
to per-TDM-edge capacity constraints ``Σ 1/r_ne <= cap_e - 1`` (one wire is
reserved so both directions always get at least one wire each during
legalization).  Relaxing the delay constraints with multipliers ``λ_c``
yields the subproblem (Eq. 5) whose optimum has the closed form of Eq. 12
via the Cauchy–Schwarz inequality; the dual is maximized by the
multiplicative update of Eq. 13 with an adaptive acceleration factor.

Every step is data-parallel over TDM edges (the Eq. 12 solve) or over
connections (delay evaluation and the multiplier update); the paper uses
OpenMP reductions, we use numpy scatter/gather over the incidence arrays
of :class:`repro.core.incidence.TdmIncidence`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

import numpy as np

from repro.core.config import RouterConfig
from repro.core.incidence import TdmIncidence
from repro.obs import Tracer, get_logger

_LAMBDA_FLOOR = 1e-16
_ETA_FLOOR = 1e-30

logger = get_logger(__name__)


@dataclass
class LrIteration:
    """Diagnostics of one LR iteration."""

    iteration: int
    critical_delay: float
    lower_bound: float
    gap: float
    acceleration: float


@dataclass
class LrHistory:
    """Convergence history of the LR loop.

    ``budget_stopped`` records that a wall-clock budget ended the loop
    early (docs/resilience.md): the best-so-far ratios are still legal
    and are what the run returns, but the result is flagged degraded.
    """

    iterations: List[LrIteration] = field(default_factory=list)
    converged: bool = False
    budget_stopped: bool = False

    @property
    def num_iterations(self) -> int:
        """Number of LR iterations run."""
        return len(self.iterations)

    @property
    def final_gap(self) -> float:
        """Relative primal-dual gap of the last iteration (inf when empty)."""
        if not self.iterations:
            return float("inf")
        return self.iterations[-1].gap

    @property
    def best_delay(self) -> float:
        """Best (smallest) critical delay seen across iterations.

        ``inf`` when no iteration ran, consistent with :attr:`final_gap`
        (an empty history has no delay, not a zero one).
        """
        if not self.iterations:
            return float("inf")
        return min(it.critical_delay for it in self.iterations)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (checkpoint payloads); floats stay bit-exact."""
        return {
            "converged": self.converged,
            "budget_stopped": self.budget_stopped,
            "iterations": [
                {
                    "iteration": it.iteration,
                    "critical_delay": it.critical_delay,
                    "lower_bound": it.lower_bound,
                    "gap": it.gap,
                    "acceleration": it.acceleration,
                }
                for it in self.iterations
            ],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "LrHistory":
        """Inverse of :meth:`to_dict`."""
        return cls(
            iterations=[
                LrIteration(
                    iteration=int(it["iteration"]),
                    critical_delay=float(it["critical_delay"]),
                    lower_bound=float(it["lower_bound"]),
                    gap=float(it["gap"]),
                    acceleration=float(it["acceleration"]),
                )
                for it in data["iterations"]
            ],
            converged=bool(data["converged"]),
            budget_stopped=bool(data.get("budget_stopped", False)),
        )


class LagrangianTdmAssigner:
    """Runs Algorithm 1 over a :class:`TdmIncidence`.

    Args:
        incidence: the solution's TDM incidence arrays.
        config: router configuration (LR iteration cap and ε).
        min_ratio: lower clamp on continuous ratios.  Clamping a ratio *up*
            only decreases ``Σ 1/r``, so edge capacity constraints are
            preserved.
        update: multiplier update rule, ``"accelerated"`` (Eq. 13) or
            ``"subgradient"`` (the classic comparison point).
        buffered: reuse preallocated √η/ratio/delay buffers and the
            precomputed per-pair capacity gather across iterations instead
            of allocating fresh arrays each step.  The scatter-adds stay
            ``np.bincount`` (the fastest scatter at these sizes), so the
            accumulation order — and hence every result — is bit-identical
            to the unbuffered allocation-per-iteration reference path.
        tracer: optional obs tracer; each iteration emits an
            ``lr.iteration`` event (gap, bounds, acceleration, ‖λ‖) when a
            sink is attached.
    """

    def __init__(
        self,
        incidence: TdmIncidence,
        config: Optional[RouterConfig] = None,
        min_ratio: float = 1.0,
        update: str = "accelerated",
        buffered: bool = True,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.incidence = incidence
        self.config = config if config is not None else RouterConfig()
        self.tracer = tracer if tracer is not None else Tracer()
        if min_ratio <= 0:
            raise ValueError("min_ratio must be positive")
        if update not in ("accelerated", "subgradient"):
            raise ValueError("update must be 'accelerated' or 'subgradient'")
        self.min_ratio = min_ratio
        self.update = update
        self.buffered = buffered
        # Compact per-edge grouping of pairs (the Eq. 12 solve is per edge).
        self._edge_ids, self._pair_group = np.unique(
            incidence.pair_edge, return_inverse=True
        )
        self._num_groups = len(self._edge_ids)
        if self._num_groups:
            group_caps = np.empty(self._num_groups, dtype=np.float64)
            # All pairs of a group share the edge, hence the capacity.
            group_caps[self._pair_group] = incidence.pair_cap
            self._group_cap_minus_1 = group_caps - 1.0
        else:
            self._group_cap_minus_1 = np.zeros(0, dtype=np.float64)
        if buffered and incidence.num_pairs:
            num_pairs = incidence.num_pairs
            # Per-pair gather of the per-group divisor, fixed for the run.
            self._cap_pp = self._group_cap_minus_1[self._pair_group]
            self._sqrt_buf = np.empty(num_pairs, dtype=np.float64)
            self._ratio_buf = np.empty(num_pairs, dtype=np.float64)
            self._delay_buf = np.empty(incidence.num_connections, dtype=np.float64)
            self._lam_work = np.empty(incidence.num_connections, dtype=np.float64)

    # ------------------------------------------------------------------
    def solve(
        self,
        warm_start: Optional[np.ndarray] = None,
        deadline: Optional[float] = None,
    ) -> "LrResult":
        """Run the LR loop and return the best continuous ratios found.

        Args:
            warm_start: optional multipliers from a previous solve on a
                similar topology (e.g. the previous timing-reroute round);
                re-normalized before use.  Defaults to the paper's uniform
                ``1/||C||`` initialization.
            deadline: wall-clock budget as a ``tracer.elapsed()`` value;
                checked after each iteration (at least one always runs).
                When exceeded, the loop stops with the best-so-far
                ratios and marks ``history.budget_stopped``.
        """
        inc = self.incidence
        cfg = self.config
        history = LrHistory()
        if inc.num_pairs == 0 or inc.num_connections == 0:
            return LrResult(
                ratios=np.zeros(0, dtype=np.float64),
                connection_delays=inc.connection_delays(np.zeros(0)),
                history=history,
            )

        num_conns = inc.num_connections
        if warm_start is not None and warm_start.shape == (num_conns,):
            lam = np.maximum(warm_start.astype(np.float64), _LAMBDA_FLOOR)
            lam /= lam.sum()
        else:
            lam = np.full(num_conns, 1.0 / num_conns, dtype=np.float64)
        acceleration = 1.0
        best_delay = np.inf
        best_ratios: Optional[np.ndarray] = None
        best_delays: Optional[np.ndarray] = None
        prev_lower_bound = -np.inf

        buffered = self.buffered
        for iteration in range(cfg.lr_max_iterations):
            ratios = self._solve_lrs(lam)
            if buffered:
                delays = inc.connection_delays(ratios, out=self._delay_buf)
            else:
                delays = inc.connection_delays(ratios)
            critical = float(delays.max())
            lower_bound = float(np.dot(lam, delays))
            gap = (critical - lower_bound) / max(lower_bound, 1e-12)
            history.iterations.append(
                LrIteration(
                    iteration=iteration,
                    critical_delay=critical,
                    lower_bound=lower_bound,
                    gap=gap,
                    acceleration=acceleration,
                )
            )
            if self.tracer.enabled:
                self.tracer.event(
                    "lr.iteration",
                    iteration=iteration,
                    critical_delay=critical,
                    lower_bound=lower_bound,
                    gap=gap,
                    acceleration=acceleration,
                    lambda_norm=float(np.linalg.norm(lam)),
                )
            if critical < best_delay:
                best_delay = critical
                # The buffered loop reuses the ratio/delay buffers on the
                # next iteration, so the best-so-far state is snapshotted.
                best_ratios = ratios.copy() if buffered else ratios
                best_delays = delays.copy() if buffered else delays
            if gap < cfg.lr_epsilon:
                history.converged = True
                break
            if deadline is not None and self.tracer.elapsed() > deadline:
                history.budget_stopped = True
                logger.warning(
                    "LR budget exhausted after %d iterations; keeping "
                    "best-so-far ratios (gap %.2e)",
                    iteration + 1,
                    gap,
                )
                break
            if self.update == "accelerated":
                # Acceleration factor (the paper follows [15]): speed up
                # while the dual bound keeps improving, damp otherwise.
                if lower_bound > prev_lower_bound:
                    acceleration = min(acceleration * 1.1, 4.0)
                else:
                    acceleration = max(acceleration * 0.8, 0.25)
                prev_lower_bound = max(prev_lower_bound, lower_bound)
                # Eq. 13 multiplicative update, then re-normalize to
                # satisfy the KKT condition Σλ = 1 (Eq. 8).
                if critical > 0:
                    if buffered:
                        work = self._lam_work
                        np.maximum(delays, 1e-12, out=work)
                        np.divide(work, critical, out=work)
                        np.power(work, acceleration, out=work)
                        np.multiply(lam, work, out=lam)
                    else:
                        lam = lam * np.power(
                            np.maximum(delays, 1e-12) / critical, acceleration
                        )
            else:
                # Classic projected subgradient with a 1/k step: the
                # comparison point the [15]-style acceleration is measured
                # against (see benchmarks/bench_lr_update.py).
                subgradient = delays - lower_bound
                norm = float(np.linalg.norm(subgradient))
                if norm > 0 and critical > 0:
                    step = 1.0 / ((iteration + 1) * norm)
                    lam = lam + step * subgradient
                prev_lower_bound = max(prev_lower_bound, lower_bound)
            if buffered:
                np.maximum(lam, _LAMBDA_FLOOR, out=lam)
            else:
                lam = np.maximum(lam, _LAMBDA_FLOOR)
            lam /= lam.sum()

        assert best_ratios is not None and best_delays is not None
        self.tracer.add("lr.iterations", history.num_iterations)
        self.tracer.gauge("lr.final_gap", history.final_gap)
        self.tracer.gauge("lr.converged", 1.0 if history.converged else 0.0)
        logger.info(
            "LR %s after %d iterations: best delay %.3f, final gap %.2e",
            "converged" if history.converged else "hit the iteration cap",
            history.num_iterations,
            history.best_delay,
            history.final_gap,
        )
        return LrResult(
            ratios=best_ratios,
            connection_delays=best_delays,
            history=history,
            multipliers=lam,
        )

    # ------------------------------------------------------------------
    def _solve_lrs(self, lam: np.ndarray) -> np.ndarray:
        """Closed-form optimum of the LR subproblem (Eq. 12) per TDM edge.

        The buffered path runs the identical operation sequence, reusing
        the √η/ratio buffers and the precomputed capacity gather; the
        scatter-adds are the same ``np.bincount`` calls either way.
        """
        inc = self.incidence
        if self.buffered:
            # Eq. 10: η_ne = d1 * Σ_{c of n using e} λ_c.
            eta = np.bincount(
                inc.inc_pair, weights=lam[inc.inc_conn], minlength=inc.num_pairs
            )
            np.multiply(eta, inc.delay_model.d1, out=eta)
            np.maximum(eta, _ETA_FLOOR, out=eta)
            sqrt_eta = np.sqrt(eta, out=self._sqrt_buf)
            group_sum = np.bincount(
                self._pair_group, weights=sqrt_eta, minlength=self._num_groups
            )
            # Eq. 12: r_ne = (Σ_{n'} sqrt(η_{n'e})) / (sqrt(η_ne) (cap_e - 1)).
            numer = group_sum[self._pair_group]
            np.multiply(sqrt_eta, self._cap_pp, out=sqrt_eta)
            np.divide(numer, sqrt_eta, out=self._ratio_buf)
            np.maximum(self._ratio_buf, self.min_ratio, out=self._ratio_buf)
            return self._ratio_buf
        # Eq. 10: η_ne = d1 * Σ_{c of n using e} λ_c.
        eta = inc.delay_model.d1 * np.bincount(
            inc.inc_pair, weights=lam[inc.inc_conn], minlength=inc.num_pairs
        )
        eta = np.maximum(eta, _ETA_FLOOR)
        sqrt_eta = np.sqrt(eta)
        group_sum = np.bincount(
            self._pair_group, weights=sqrt_eta, minlength=self._num_groups
        )
        # Eq. 12: r_ne = (Σ_{n'} sqrt(η_{n'e})) / (sqrt(η_ne) (cap_e - 1)).
        ratios = group_sum[self._pair_group] / (
            sqrt_eta * self._group_cap_minus_1[self._pair_group]
        )
        return np.maximum(ratios, self.min_ratio)


@dataclass
class LrResult:
    """Output of the LR phase: continuous per-pair ratios and diagnostics.

    Attributes:
        ratios: best per-pair continuous ratios found.
        connection_delays: per-connection delays under those ratios.
        history: convergence trace.
        multipliers: final λ (usable as a warm start for a re-solve on a
            slightly changed topology).
    """

    ratios: np.ndarray
    connection_delays: np.ndarray
    history: LrHistory
    multipliers: Optional[np.ndarray] = None
