"""Greedy TDM wire assignment (Section III-D, last stage).

For each directed TDM edge, nets are packed onto physical wires following
the paper's greedy: repeatedly open a wire whose ratio is the smallest
remaining net ratio and fill it with the ``ratio`` smallest-ratio nets.
Leftover demand (wires exhausted) is folded onto the wires whose nets are
least critical, bumping their ratio a step at a time; leftover capacity
(wires to spare) is spent moving the most critical nets onto empty wires
at the minimum ratio.  Finally every wire's ratio is shrunk to the legal
minimum for its demand — a pure improvement the rules always allow — and
each net's ratio becomes its wire's ratio.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import repeat
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.arch.edges import TdmWire
from repro.core.config import RouterConfig
from repro.core.incidence import TdmIncidence
from repro.obs import Tracer, get_logger
from repro.parallel import ParallelExecutor
from repro.route.solution import RoutingSolution

logger = get_logger(__name__)


@dataclass
class WireAssignmentStats:
    """Counters describing one wire-assignment run."""

    wires_used: int = 0
    nets_assigned: int = 0
    overflow_bumps: int = 0
    critical_moves: int = 0


class WireAssigner:
    """Assigns nets to physical TDM wires per directed edge."""

    def __init__(
        self,
        incidence: TdmIncidence,
        config: Optional[RouterConfig] = None,
        executor: Optional[ParallelExecutor] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.incidence = incidence
        self.config = config if config is not None else RouterConfig()
        self.executor = executor if executor is not None else ParallelExecutor(1)
        self.tracer = tracer if tracer is not None else Tracer()

    # ------------------------------------------------------------------
    def assign(
        self,
        solution: RoutingSolution,
        ratios: np.ndarray,
        wire_budgets: Dict[Tuple[int, int], int],
        criticality: np.ndarray,
    ) -> WireAssignmentStats:
        """Build ``solution.wires`` / ``solution.net_wire`` and final ratios.

        Args:
            solution: solution to receive the wires (its topology must be
                the one the incidence was built from).
            ratios: legalized per-pair ratios.
            wire_budgets: per-(edge, direction) wire counts from
                legalization.
            criticality: per-pair criticality from legalization.
        """
        inc = self.incidence
        stats = WireAssignmentStats()
        edges = sorted({edge for edge, _ in inc.directed_edges()})
        # Plain-list views shared by every per-edge task: the greedy
        # probes these per pair, where numpy scalar access would dominate
        # (both arrays are read-only here).
        ratio_list = ratios.tolist()
        if criticality is None:
            crit_arr = np.zeros(len(ratio_list), dtype=np.float64)
        else:
            crit_arr = criticality
        crit_list = crit_arr.tolist()
        neg_crit = np.negative(crit_arr)
        pair_net = inc.pair_net.tolist()

        def build(edge_index: int) -> Tuple[List[TdmWire], int, int, int]:
            # Runs on a worker thread: counters come back as values and
            # are reduced on the dispatch thread, so no task ever writes
            # shared state.
            wires: List[TdmWire] = []
            nets = bumps = moves = 0
            for direction in (0, 1):
                pair_slice = inc.pair_slice_of_directed_edge(edge_index, direction)
                if not pair_slice.size:
                    continue
                # Ascending ratio; among equal ratios the more critical
                # net first so it lands on the (smaller-ratio) earlier
                # wire; lexsort is stable, so remaining ties keep the
                # ascending pair order — exactly the Python
                # sorted(key=(ratio, -criticality)) order.
                order = pair_slice[
                    np.lexsort((neg_crit[pair_slice], ratios[pair_slice]))
                ].tolist()
                budget = wire_budgets[(edge_index, direction)]
                edge_wires, edge_bumps, edge_moves = self._assign_directed_edge(
                    edge_index,
                    direction,
                    pair_slice.tolist(),
                    order,
                    budget,
                    ratio_list,
                    crit_list,
                    pair_net,
                )
                wires.extend(edge_wires)
                nets += pair_slice.size
                bumps += edge_bumps
                moves += edge_moves
            return wires, nets, bumps, moves

        per_edge_results = self.executor.map(build, edges)
        tracer = self.tracer
        net_wire = solution.net_wire
        final_ratios = solution.ratios
        for edge_index, (wires, nets, bumps, moves) in zip(edges, per_edge_results):
            stats.nets_assigned += nets
            stats.overflow_bumps += bumps
            stats.critical_moves += moves
            solution.wires[edge_index] = wires
            for position, wire in enumerate(wires):
                direction = wire.direction
                wire_ratio = float(wire.ratio)
                uses = [
                    (net_index, edge_index, direction)
                    for net_index in wire.net_indices
                ]
                net_wire.update(zip(uses, repeat(position)))
                final_ratios.update(zip(uses, repeat(wire_ratio)))
            stats.wires_used += len(wires)
            for direction in (0, 1):
                budget = wire_budgets.get((edge_index, direction))
                if not budget:
                    continue
                used = sum(1 for wire in wires if wire.direction == direction)
                tracer.observe(
                    "wire_assignment.utilization.dir0"
                    if direction == 0
                    else "wire_assignment.utilization.dir1",
                    used / budget,
                )
        tracer.add("wire_assignment.wires_used", stats.wires_used)
        tracer.add("wire_assignment.nets_assigned", stats.nets_assigned)
        tracer.add("wire_assignment.overflow_bumps", stats.overflow_bumps)
        tracer.add("wire_assignment.critical_moves", stats.critical_moves)
        logger.info(
            "wire assignment: %d nets on %d wires (%d overflow bumps, "
            "%d critical moves)",
            stats.nets_assigned,
            stats.wires_used,
            stats.overflow_bumps,
            stats.critical_moves,
        )
        return stats

    # ------------------------------------------------------------------
    def _assign_directed_edge(
        self,
        edge_index: int,
        direction: int,
        pairs: List[int],
        order: List[int],
        budget: int,
        ratios: List[float],
        criticality: List[float],
        pair_net: List[int],
    ) -> Tuple[List[TdmWire], int, int]:
        """The paper's greedy for one directed edge.

        Args:
            pairs: the directed edge's pair indices, ascending.
            order: the same pairs sorted by (ratio, -criticality).

        Returns:
            ``(wires, overflow_bumps, critical_moves)``; counters are
            local so concurrent per-edge tasks never share state.
        """
        model = self.incidence.delay_model
        overflow_bumps = 0
        critical_moves = 0
        step = model.tdm_step
        wires: List[TdmWire] = []
        # Plain mirrors of each wire's ratio/demand/max-criticality: the
        # leftover scan probes them per wire, where dataclass attribute
        # access would dominate.
        wire_ratios: List[int] = []
        wire_demands: List[int] = []
        wire_crit: List[float] = []
        cursor = 0
        total = len(order)
        while cursor < total and len(wires) < budget:
            wire_ratio = int(round(ratios[order[cursor]]))
            group = order[cursor : cursor + wire_ratio]
            wire = TdmWire(edge_index=edge_index, direction=direction, ratio=wire_ratio)
            wire.net_indices.extend([pair_net[pair] for pair in group])
            wires.append(wire)
            wire_ratios.append(wire_ratio)
            wire_demands.append(len(group))
            wire_crit.append(max([criticality[pair] for pair in group]))
            cursor += len(group)

        # Leftover demand: fold onto existing wires, preferring headroom,
        # otherwise bump the wire whose nets are least critical.
        if cursor < total:
            for pair in order[cursor:]:
                target = self._pick_wire_for_leftover(
                    wire_ratios, wire_demands, wire_crit
                )
                if wire_demands[target] >= wire_ratios[target]:
                    wire_ratios[target] += step
                    wires[target].ratio += step
                    overflow_bumps += 1
                wires[target].add_net(pair_net[pair])
                wire_demands[target] += 1
                crit = criticality[pair]
                if crit > wire_crit[target]:
                    wire_crit[target] = crit

        # Leftover capacity: give the most critical shared nets private
        # wires at the minimum ratio.
        spare = budget - len(wires)
        if spare > 0 and wires:
            pair_wire = self._pair_wire_map(wires, order, pair_net)
            candidates = sorted(
                (p for p in pairs if p in pair_wire),
                key=lambda p: -criticality[p],
            )
            for pair in candidates:
                if spare <= 0:
                    break
                source = wires[pair_wire[pair]]
                if source.demand < 2 or source.ratio <= step:
                    continue
                net = pair_net[pair]
                source.net_indices.remove(net)
                fresh = TdmWire(
                    edge_index=edge_index, direction=direction, ratio=step
                )
                fresh.add_net(net)
                wires.append(fresh)
                spare -= 1
                critical_moves += 1

        # Final shrink: a wire's ratio only needs to be the smallest legal
        # multiple of the step covering its demand.
        for wire in wires:
            wire.ratio = model.legalize_ratio(wire.demand)
        return wires, overflow_bumps, critical_moves

    # ------------------------------------------------------------------
    @staticmethod
    def _pick_wire_for_leftover(
        wire_ratios: List[int], wire_demands: List[int], wire_crit: List[float]
    ) -> int:
        """Wire to receive a leftover net: headroom first, then least critical."""
        best = -1
        best_ratio = 0
        for index, ratio in enumerate(wire_ratios):
            if wire_demands[index] < ratio and (best < 0 or ratio < best_ratio):
                best = index
                best_ratio = ratio
        if best >= 0:
            return best
        # First index of the minimum, matching np.argmin.
        return min(range(len(wire_crit)), key=wire_crit.__getitem__)

    @staticmethod
    def _pair_wire_map(
        wires: List[TdmWire], order: List[int], pair_net: List[int]
    ) -> Dict[int, int]:
        """Map each assigned pair to the index of its wire."""
        net_to_wire: Dict[int, int] = {}
        for index, wire in enumerate(wires):
            for net in wire.net_indices:
                net_to_wire[net] = index
        return {
            pair: net_to_wire[pair_net[pair]]
            for pair in order
            if pair_net[pair] in net_to_wire
        }
