"""Greedy TDM wire assignment (Section III-D, last stage).

For each directed TDM edge, nets are packed onto physical wires following
the paper's greedy: repeatedly open a wire whose ratio is the smallest
remaining net ratio and fill it with the ``ratio`` smallest-ratio nets.
Leftover demand (wires exhausted) is folded onto the wires whose nets are
least critical, bumping their ratio a step at a time; leftover capacity
(wires to spare) is spent moving the most critical nets onto empty wires
at the minimum ratio.  Finally every wire's ratio is shrunk to the legal
minimum for its demand — a pure improvement the rules always allow — and
each net's ratio becomes its wire's ratio.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.arch.edges import TdmWire
from repro.core.config import RouterConfig
from repro.core.incidence import TdmIncidence
from repro.obs import Tracer, get_logger
from repro.parallel import ParallelExecutor
from repro.route.solution import RoutingSolution

logger = get_logger(__name__)


@dataclass
class WireAssignmentStats:
    """Counters describing one wire-assignment run."""

    wires_used: int = 0
    nets_assigned: int = 0
    overflow_bumps: int = 0
    critical_moves: int = 0


class WireAssigner:
    """Assigns nets to physical TDM wires per directed edge."""

    def __init__(
        self,
        incidence: TdmIncidence,
        config: Optional[RouterConfig] = None,
        executor: Optional[ParallelExecutor] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.incidence = incidence
        self.config = config if config is not None else RouterConfig()
        self.executor = executor if executor is not None else ParallelExecutor(1)
        self.tracer = tracer if tracer is not None else Tracer()

    # ------------------------------------------------------------------
    def assign(
        self,
        solution: RoutingSolution,
        ratios: np.ndarray,
        wire_budgets: Dict[Tuple[int, int], int],
        criticality: np.ndarray,
    ) -> WireAssignmentStats:
        """Build ``solution.wires`` / ``solution.net_wire`` and final ratios.

        Args:
            solution: solution to receive the wires (its topology must be
                the one the incidence was built from).
            ratios: legalized per-pair ratios.
            wire_budgets: per-(edge, direction) wire counts from
                legalization.
            criticality: per-pair criticality from legalization.
        """
        inc = self.incidence
        stats = WireAssignmentStats()
        edges = sorted({edge for edge, _ in inc.directed_edges()})
        # Plain-list views shared by every per-edge task: the greedy sorts
        # and probes these per pair, where numpy scalar access would
        # dominate (both arrays are read-only here).
        ratio_list = ratios.tolist()
        crit_list = (
            criticality.tolist()
            if criticality is not None
            else [0.0] * len(ratio_list)
        )
        pair_net = inc.pair_net.tolist()

        def build(edge_index: int) -> List[TdmWire]:
            wires: List[TdmWire] = []
            for direction in (0, 1):
                pairs = inc.pairs_of_directed_edge(edge_index, direction)
                if not pairs:
                    continue
                budget = wire_budgets[(edge_index, direction)]
                wires.extend(
                    self._assign_directed_edge(
                        edge_index,
                        direction,
                        pairs,
                        budget,
                        ratio_list,
                        crit_list,
                        pair_net,
                        stats,
                    )
                )
            return wires

        per_edge_wires = self.executor.map(build, edges)
        tracer = self.tracer
        for edge_index, wires in zip(edges, per_edge_wires):
            solution.wires[edge_index] = wires
            for position, wire in enumerate(wires):
                for net_index in wire.net_indices:
                    use = (net_index, edge_index, wire.direction)
                    solution.net_wire[use] = position
                    solution.ratios[use] = float(wire.ratio)
            stats.wires_used += len(wires)
            for direction in (0, 1):
                budget = wire_budgets.get((edge_index, direction))
                if not budget:
                    continue
                used = sum(1 for wire in wires if wire.direction == direction)
                tracer.observe(
                    "wire_assignment.utilization.dir0"
                    if direction == 0
                    else "wire_assignment.utilization.dir1",
                    used / budget,
                )
        tracer.add("wire_assignment.wires_used", stats.wires_used)
        tracer.add("wire_assignment.nets_assigned", stats.nets_assigned)
        tracer.add("wire_assignment.overflow_bumps", stats.overflow_bumps)
        tracer.add("wire_assignment.critical_moves", stats.critical_moves)
        logger.info(
            "wire assignment: %d nets on %d wires (%d overflow bumps, "
            "%d critical moves)",
            stats.nets_assigned,
            stats.wires_used,
            stats.overflow_bumps,
            stats.critical_moves,
        )
        return stats

    # ------------------------------------------------------------------
    def _assign_directed_edge(
        self,
        edge_index: int,
        direction: int,
        pairs: List[int],
        budget: int,
        ratios: List[float],
        criticality: List[float],
        pair_net: List[int],
        stats: WireAssignmentStats,
    ) -> List[TdmWire]:
        """The paper's greedy for one directed edge."""
        model = self.incidence.delay_model
        step = model.tdm_step
        # Ascending ratio; among equal ratios the more critical net first so
        # it lands on the (smaller-ratio) earlier wire.
        order = sorted(pairs, key=lambda p: (ratios[p], -criticality[p]))
        wires: List[TdmWire] = []
        cursor = 0
        while cursor < len(order) and len(wires) < budget:
            wire_ratio = int(round(ratios[order[cursor]]))
            group = order[cursor : cursor + wire_ratio]
            wire = TdmWire(edge_index=edge_index, direction=direction, ratio=wire_ratio)
            for pair in group:
                wire.add_net(pair_net[pair])
            wires.append(wire)
            cursor += len(group)

        # Leftover demand: fold onto existing wires, preferring headroom,
        # otherwise bump the wire whose nets are least critical.
        if cursor < len(order):
            wire_crit = self._wire_criticalities(wires, pairs, criticality, pair_net)
            for pair in order[cursor:]:
                target = self._pick_wire_for_leftover(wires, wire_crit)
                wire = wires[target]
                if wire.demand >= wire.ratio:
                    wire.ratio += step
                    stats.overflow_bumps += 1
                wire.add_net(pair_net[pair])
                wire_crit[target] = max(wire_crit[target], criticality[pair])

        # Leftover capacity: give the most critical shared nets private
        # wires at the minimum ratio.
        spare = budget - len(wires)
        if spare > 0 and wires:
            pair_wire = self._pair_wire_map(wires, order, pair_net)
            candidates = sorted(
                (p for p in pairs if p in pair_wire),
                key=lambda p: -criticality[p],
            )
            for pair in candidates:
                if spare <= 0:
                    break
                source = wires[pair_wire[pair]]
                if source.demand < 2 or source.ratio <= step:
                    continue
                net = pair_net[pair]
                source.net_indices.remove(net)
                fresh = TdmWire(
                    edge_index=edge_index, direction=direction, ratio=step
                )
                fresh.add_net(net)
                wires.append(fresh)
                spare -= 1
                stats.critical_moves += 1

        # Final shrink: a wire's ratio only needs to be the smallest legal
        # multiple of the step covering its demand.
        for wire in wires:
            wire.ratio = model.legalize_ratio(wire.demand)
        stats.nets_assigned += len(pairs)
        return wires

    # ------------------------------------------------------------------
    @staticmethod
    def _pick_wire_for_leftover(wires: List[TdmWire], wire_crit: List[float]) -> int:
        """Wire to receive a leftover net: headroom first, then least critical."""
        best = -1
        for index, wire in enumerate(wires):
            if wire.demand < wire.ratio:
                if best < 0 or wire.ratio < wires[best].ratio:
                    best = index
        if best >= 0:
            return best
        return int(np.argmin(wire_crit))

    @staticmethod
    def _wire_criticalities(
        wires: List[TdmWire],
        pairs: List[int],
        criticality: List[float],
        pair_net: List[int],
    ) -> List[float]:
        """Max criticality of the nets currently on each wire."""
        net_crit = {pair_net[p]: criticality[p] for p in pairs}
        return [
            max((net_crit.get(net, 0.0) for net in wire.net_indices), default=0.0)
            for wire in wires
        ]

    @staticmethod
    def _pair_wire_map(
        wires: List[TdmWire], order: List[int], pair_net: List[int]
    ) -> Dict[int, int]:
        """Map each assigned pair to the index of its wire."""
        net_to_wire: Dict[int, int] = {}
        for index, wire in enumerate(wires):
            for net in wire.net_indices:
                net_to_wire[net] = index
        return {
            pair: net_to_wire[pair_net[pair]]
            for pair in order
            if pair_net[pair] in net_to_wire
        }
