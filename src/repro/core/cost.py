"""Routing cost functions of the initial router (Section III-B).

SLL and TDM edges have different cost shapes because their timing differs:

* SLL edges cost ``µ * w_e`` where ``w_e`` is the estimated edge weight
  plus the accumulated negotiation history, scaled by a present-congestion
  factor while an edge is (about to be) overfull.
* TDM edges cost ``µ * (d0 + p + demand_e / cap_e)`` (Eq. 2): the cost
  rises with demand, spreading nets across TDM edges to keep eventual
  ratios — and hence the critical connection delay — low.

``µ`` rewards reusing an edge already carrying another connection of the
same net (µ = 1/2 in practice), steering multi-fanout nets toward shared
trees without forcing them.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Set

import numpy as np

from repro.core.config import RouterConfig
from repro.route.graph import RoutingGraph
from repro.timing.delay import DelayModel


class EdgeCostModel:
    """Per-edge routing costs with negotiation history.

    Args:
        graph: the routing graph.
        delay_model: delay constants (``d0`` and the TDM step feed Eq. 2).
        config: router knobs (µ, history increment, present penalty).
        base_weights: per-edge estimated weights from
            :func:`repro.core.ordering.estimate_edge_weights`.
    """

    def __init__(
        self,
        graph: RoutingGraph,
        delay_model: DelayModel,
        config: RouterConfig,
        base_weights: Sequence[float],
    ) -> None:
        if len(base_weights) != graph.num_edges:
            raise ValueError("need one base weight per edge")
        self.graph = graph
        self.delay_model = delay_model
        self.config = config
        # Plain Python lists: the cost function runs once per heap edge
        # relaxation, where list indexing beats numpy scalar access.
        self.base_weights = [float(w) for w in base_weights]
        self.history = [0.0] * graph.num_edges
        self.is_tdm = [bool(t) for t in graph.is_tdm]
        self.capacity = [int(c) for c in graph.capacity]
        self._tdm_fixed = delay_model.d0 + delay_model.tdm_step
        #: Edges whose history changed since the last :meth:`drain_dirty`
        #: (consumed by the routing kernel to refresh its cost vector).
        self._dirty: Set[int] = set()

    def cost(self, edge_index: int, demand: int, used_by_net: bool) -> float:
        """Cost of routing one more connection over an edge.

        Args:
            edge_index: the edge.
            demand: current number of nets on the edge.
            used_by_net: whether the edge already routes another connection
                of the same net (enables the µ discount).
        """
        mu = self.config.mu_shared if used_by_net else 1.0
        if self.is_tdm[edge_index]:
            return mu * (self._tdm_fixed + demand / self.capacity[edge_index])
        pressure = 1.0
        overuse = demand + 1 - self.capacity[edge_index]
        if overuse > 0:
            pressure += self.config.present_penalty * overuse
        return mu * (self.base_weights[edge_index] + self.history[edge_index]) * pressure

    def add_history(self, edge_indices: Sequence[int]) -> None:
        """Bump the negotiation history of overflowed SLL edges.

        The bump scales with the edge's base weight so the negotiation
        pressure is proportional in both weight modes (a +4 absolute bump
        would dwarf a delay-mode base of 1 but vanish against a
        congestion-mode base of ``||V|| + 1``).
        """
        increment = self.config.history_increment
        for edge_index in edge_indices:
            bump = increment * self.base_weights[edge_index]
            if bump:
                self.history[edge_index] += bump
                self._dirty.add(edge_index)

    # -- kernel support ------------------------------------------------
    def drain_dirty(self) -> Set[int]:
        """Edges whose history changed since the last drain (and reset)."""
        dirty = self._dirty
        self._dirty = set()
        return dirty

    def cost_vector(self, demand: Sequence[int]) -> List[float]:
        """Undiscounted (µ = 1) cost of every edge at the given demands.

        Entry ``e`` is bit-equal to ``cost(e, demand[e], False)``: the
        kernel searches index this vector instead of calling the closure,
        and overlay entries for µ-discounted edges are computed with
        :meth:`cost` itself, so array-driven and closure-driven searches
        price every edge identically.
        """
        cost = self.cost
        return [cost(e, demand[e], False) for e in range(self.graph.num_edges)]

    def refresh_cost_entries(
        self, vec: List[float], demand: Sequence[int], edges: Iterable[int]
    ) -> bool:
        """Recompute ``vec`` entries for ``edges``; True if any changed.

        SLL edges below capacity keep a demand-independent cost, so a
        demand delta there refreshes to the identical value and reports
        no change — the caller can then keep its cost epoch (and any
        cached SSSP trees) intact.

        The arithmetic inlines :meth:`cost` at ``µ = 1`` with the same
        operation order, so entries stay bit-equal to
        ``cost(e, demand[e], False)``.  This runs once per routed
        connection, which is why it avoids the per-edge method call.
        """
        is_tdm = self.is_tdm
        capacity = self.capacity
        base_weights = self.base_weights
        history = self.history
        tdm_fixed = self._tdm_fixed
        penalty = self.config.present_penalty
        changed = False
        for edge_index in edges:
            if is_tdm[edge_index]:
                value = tdm_fixed + demand[edge_index] / capacity[edge_index]
            else:
                value = base_weights[edge_index] + history[edge_index]
                overuse = demand[edge_index] + 1 - capacity[edge_index]
                if overuse > 0:
                    value *= 1.0 + penalty * overuse
            if value != vec[edge_index]:
                vec[edge_index] = value
                changed = True
        return changed

    def apply_mu_overlay(
        self, vec: List[float], demand: Sequence[int], edges: Iterable[int]
    ) -> None:
        """Patch ``vec`` entries to the µ-discounted cost for ``edges``.

        Each patched entry is bit-equal to ``cost(e, demand[e], True)``
        (same inlining discipline as :meth:`refresh_cost_entries`); the
        kernel calls this once per per-net search on a copy of its cost
        vector.
        """
        mu = self.config.mu_shared
        is_tdm = self.is_tdm
        capacity = self.capacity
        base_weights = self.base_weights
        history = self.history
        tdm_fixed = self._tdm_fixed
        penalty = self.config.present_penalty
        for edge_index in edges:
            if is_tdm[edge_index]:
                vec[edge_index] = mu * (
                    tdm_fixed + demand[edge_index] / capacity[edge_index]
                )
            else:
                value = mu * (base_weights[edge_index] + history[edge_index])
                overuse = demand[edge_index] + 1 - capacity[edge_index]
                if overuse > 0:
                    value *= 1.0 + penalty * overuse
                vec[edge_index] = value

    def history_array(self) -> np.ndarray:
        """Copy of the per-edge history costs (diagnostics)."""
        return np.asarray(self.history, dtype=np.float64)
