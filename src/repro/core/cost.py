"""Routing cost functions of the initial router (Section III-B).

SLL and TDM edges have different cost shapes because their timing differs:

* SLL edges cost ``µ * w_e`` where ``w_e`` is the estimated edge weight
  plus the accumulated negotiation history, scaled by a present-congestion
  factor while an edge is (about to be) overfull.
* TDM edges cost ``µ * (d0 + p + demand_e / cap_e)`` (Eq. 2): the cost
  rises with demand, spreading nets across TDM edges to keep eventual
  ratios — and hence the critical connection delay — low.

``µ`` rewards reusing an edge already carrying another connection of the
same net (µ = 1/2 in practice), steering multi-fanout nets toward shared
trees without forcing them.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.config import RouterConfig
from repro.route.graph import RoutingGraph
from repro.timing.delay import DelayModel


class EdgeCostModel:
    """Per-edge routing costs with negotiation history.

    Args:
        graph: the routing graph.
        delay_model: delay constants (``d0`` and the TDM step feed Eq. 2).
        config: router knobs (µ, history increment, present penalty).
        base_weights: per-edge estimated weights from
            :func:`repro.core.ordering.estimate_edge_weights`.
    """

    def __init__(
        self,
        graph: RoutingGraph,
        delay_model: DelayModel,
        config: RouterConfig,
        base_weights: Sequence[float],
    ) -> None:
        if len(base_weights) != graph.num_edges:
            raise ValueError("need one base weight per edge")
        self.graph = graph
        self.delay_model = delay_model
        self.config = config
        # Plain Python lists: the cost function runs once per heap edge
        # relaxation, where list indexing beats numpy scalar access.
        self.base_weights = [float(w) for w in base_weights]
        self.history = [0.0] * graph.num_edges
        self.is_tdm = [bool(t) for t in graph.is_tdm]
        self.capacity = [int(c) for c in graph.capacity]
        self._tdm_fixed = delay_model.d0 + delay_model.tdm_step

    def cost(self, edge_index: int, demand: int, used_by_net: bool) -> float:
        """Cost of routing one more connection over an edge.

        Args:
            edge_index: the edge.
            demand: current number of nets on the edge.
            used_by_net: whether the edge already routes another connection
                of the same net (enables the µ discount).
        """
        mu = self.config.mu_shared if used_by_net else 1.0
        if self.is_tdm[edge_index]:
            return mu * (self._tdm_fixed + demand / self.capacity[edge_index])
        pressure = 1.0
        overuse = demand + 1 - self.capacity[edge_index]
        if overuse > 0:
            pressure += self.config.present_penalty * overuse
        return mu * (self.base_weights[edge_index] + self.history[edge_index]) * pressure

    def add_history(self, edge_indices: Sequence[int]) -> None:
        """Bump the negotiation history of overflowed SLL edges.

        The bump scales with the edge's base weight so the negotiation
        pressure is proportional in both weight modes (a +4 absolute bump
        would dwarf a delay-mode base of 1 but vanish against a
        congestion-mode base of ``||V|| + 1``).
        """
        for edge_index in edge_indices:
            self.history[edge_index] += (
                self.config.history_increment * self.base_weights[edge_index]
            )

    def history_array(self) -> np.ndarray:
        """Copy of the per-edge history costs (diagnostics)."""
        return np.asarray(self.history, dtype=np.float64)
