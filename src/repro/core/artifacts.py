"""Warm per-topology routing artifacts and their shared LRU cache.

A routing run's cold start is dominated by work that depends only on the
*case* (system + netlist + delay model) and a handful of pricing knobs:
building the :class:`~repro.route.graph.RoutingGraph`, estimating edge
weights, the Floyd–Warshall all-pairs matrix, the connection ordering,
and — in kernel mode — the pristine-cost SSSP trees the first searches
would otherwise recompute.  In a serving setting (docs/serving.md) the
same few topologies are routed over and over, so this module factors
that work into an immutable :class:`RoutingArtifacts` bundle that many
concurrent runs can share, plus a thread-safe size-bounded
:class:`ArtifactCache` keyed by ``(case digest, pricing knobs, epoch)``.

Sharing is safe because every artifact is read-only during routing: the
graph is flat immutable arrays, the weights/dist/order are never written
after construction, and the seed trees are consumed by value (the kernel
stores the shared lists but never mutates a tree in place — a stale tree
is *replaced*, not patched).  Bit-identity is preserved because the seed
trees are built with the exact flat search the kernel itself uses, from
the same pristine cost vector a fresh run would start from: extracting a
path from a cached tree and running the early-exit single-target search
relax edges in the same order with the same strict ``<`` tie-breaking,
so the resulting paths — and everything downstream — are unchanged.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.arch.system import MultiFpgaSystem
from repro.core.config import RouterConfig
from repro.core.cost import EdgeCostModel
from repro.core.ordering import estimate_edge_weights, floyd_warshall, order_connections
from repro.core.pathfinder import NegotiationState
from repro.netlist.netlist import Netlist
from repro.obs import get_logger
from repro.route.dijkstra import dijkstra_all_flat
from repro.route.graph import RoutingGraph
from repro.timing.delay import DelayModel

logger = get_logger(__name__)

#: RouterConfig fields that change what the artifacts contain.  The
#: weights (and therefore dist/order) depend on ``weight_mode``; the
#: pristine cost vector behind the seed trees depends on the pricing
#: constants.  Keying on all of them is deliberately conservative —
#: over-keying costs a cache miss, under-keying would corrupt results.
PRICING_FIELDS = (
    "mu_shared",
    "history_increment",
    "present_penalty",
    "weight_mode",
)


@dataclass(frozen=True)
class RoutingArtifacts:
    """Immutable per-topology warm state shared across routing runs.

    Attributes:
        graph: the routing graph (flat immutable arrays).
        base_weights: per-edge estimated weights
            (:func:`~repro.core.ordering.estimate_edge_weights` output).
        weight_mode: the *resolved* mode string (``"delay"`` or
            ``"congestion"``), i.e. what ``"auto"`` picked.
        dist: Floyd–Warshall all-pairs path-weight matrix.
        order: connection routing order (Section III-B).
        rank: connection index → position in ``order``.
        seed_trees: source die → ``(dist, prev)`` SSSP tree under the
            pristine (zero-demand, zero-history) cost vector; exactly
            what the kernel's epoch-0 tree cache would hold.
        nbytes: rough in-memory footprint estimate used by the cache's
            byte bound.
    """

    graph: RoutingGraph
    base_weights: np.ndarray
    weight_mode: str
    dist: np.ndarray
    order: List[int]
    rank: Dict[int, int]
    seed_trees: Dict[int, Tuple[List[float], List[int]]]
    nbytes: int


def build_artifacts(
    system: MultiFpgaSystem,
    netlist: Netlist,
    delay_model: Optional[DelayModel] = None,
    config: Optional[RouterConfig] = None,
    tracer: Optional[Any] = None,
) -> RoutingArtifacts:
    """Build the warm artifacts one cold run would compute in ``ir.prepare``.

    The computation mirrors :class:`~repro.core.initial_routing.InitialRouter`
    exactly — same functions, same order — so a run seeded from these
    artifacts is bit-identical to a cold one.
    """
    delay_model = delay_model if delay_model is not None else DelayModel()
    config = config if config is not None else RouterConfig()

    def _build() -> RoutingArtifacts:
        graph = RoutingGraph(system)
        weights = estimate_edge_weights(graph, netlist, config.weight_mode)
        resolved = (
            "delay" if weights[graph.is_tdm].max(initial=0) > 1 else "congestion"
        )
        dist = floyd_warshall(graph, weights)
        order = order_connections(netlist, dist)
        rank = {conn_index: pos for pos, conn_index in enumerate(order)}
        seed_trees = _build_seed_trees(graph, netlist, delay_model, config, weights)
        nbytes = _estimate_nbytes(graph, dist, seed_trees)
        return RoutingArtifacts(
            graph=graph,
            base_weights=weights,
            weight_mode=resolved,
            dist=dist,
            order=order,
            rank=rank,
            seed_trees=seed_trees,
            nbytes=nbytes,
        )

    if tracer is not None:
        with tracer.span("artifacts.build"):
            return _build()
    return _build()


def _build_seed_trees(
    graph: RoutingGraph,
    netlist: Netlist,
    delay_model: DelayModel,
    config: RouterConfig,
    weights: np.ndarray,
) -> Dict[int, Tuple[List[float], List[int]]]:
    """Pristine-cost SSSP trees for every net source die.

    Uses the same CSR row layout and flat search as
    :class:`~repro.route.kernel.RoutingKernel`, priced by a fresh
    :class:`EdgeCostModel` at zero demand and zero history — the exact
    vector a cold kernel starts from, so seeding these trees at epoch 0
    cannot change any path.
    """
    state = NegotiationState(graph)
    cost_model = EdgeCostModel(graph, delay_model, config, weights)
    cost_vec = cost_model.cost_vector(state.demand)
    indptr = graph.csr_indptr.tolist()
    edge_ids = graph.csr_edge.tolist()
    neighbor_dies = graph.csr_die.tolist()
    rows: List[List[Tuple[int, int]]] = [
        list(
            zip(
                edge_ids[indptr[die] : indptr[die + 1]],
                neighbor_dies[indptr[die] : indptr[die + 1]],
            )
        )
        for die in range(graph.num_dies)
    ]
    sources = sorted({conn.source_die for conn in netlist.connections})
    return {
        source: dijkstra_all_flat(rows, source, cost_vec)
        for source in sources
    }


def _estimate_nbytes(
    graph: RoutingGraph,
    dist: np.ndarray,
    seed_trees: Dict[int, Tuple[List[float], List[int]]],
) -> int:
    """Rough footprint: the dist matrix, the trees, the CSR arrays."""
    tree_bytes = len(seed_trees) * graph.num_dies * 16
    graph_bytes = graph.num_edges * 40 + graph.num_dies * 8
    return int(dist.nbytes) + tree_bytes + graph_bytes


# ----------------------------------------------------------------------
# Cache keys
# ----------------------------------------------------------------------
def case_digest(
    system: MultiFpgaSystem, netlist: Netlist, delay_model: DelayModel
) -> str:
    """Stable hex digest of a full case (system + netlist + delay params).

    Built over the canonical JSON case serialization
    (:func:`repro.io.json_format.case_to_dict` with sorted keys), so two
    equal cases digest identically regardless of how they were loaded.
    """
    from repro.io.json_format import case_to_dict

    doc = case_to_dict(system, netlist, delay_model)
    payload = json.dumps(doc, sort_keys=True).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


def artifact_key(
    system: MultiFpgaSystem,
    netlist: Netlist,
    delay_model: DelayModel,
    config: RouterConfig,
    epoch: int = 0,
) -> str:
    """Cache key of the artifacts for one ``(case, pricing knobs, epoch)``.

    ``epoch`` is a client-controlled generation number: bumping it
    invalidates every cached artifact of the topology without touching
    the rest of the cache (docs/serving.md).
    """
    knobs = ",".join(
        f"{name}={getattr(config, name)!r}" for name in PRICING_FIELDS
    )
    return (
        f"artifacts:{case_digest(system, netlist, delay_model)}"
        f":{knobs}:epoch={int(epoch)}"
    )


# ----------------------------------------------------------------------
# The shared cache
# ----------------------------------------------------------------------
@dataclass
class CacheStats:
    """Hit/miss/eviction counters of one :class:`ArtifactCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    in_flight_waits: int = 0

    def to_dict(self) -> Dict[str, int]:
        """JSON-ready counters (run reports, bench rows)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "in_flight_waits": self.in_flight_waits,
        }

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0 when the cache was never consulted)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ArtifactCache:
    """Thread-safe size-bounded LRU over warm routing artifacts.

    One cache instance is shared by every worker of a
    :class:`repro.serve.RoutingService`; entries are namespaced strings
    (``"artifacts:..."``, ``"case:..."``) so resolved cases and built
    artifacts live side by side under one eviction policy.

    Builds are de-duplicated: when several requests miss the same key
    concurrently, one thread builds while the rest wait on a per-key
    event and then take the built value (counted as ``in_flight_waits``,
    not extra misses).  The cache lock is never held during a build.

    Args:
        max_entries: LRU entry bound (evict least-recently-used beyond
            it).  ``None`` leaves the entry count unbounded.
        max_bytes: optional byte bound over entries' ``nbytes``
            attributes (entries without one count as 0).
    """

    def __init__(
        self,
        max_entries: Optional[int] = 8,
        max_bytes: Optional[int] = None,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1 when set")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be >= 1 when set")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.stats = CacheStats()
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, Any]" = OrderedDict()
        self._building: Dict[str, threading.Event] = {}

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        """Presence probe; does not touch LRU order or the counters."""
        with self._lock:
            return key in self._entries

    def keys(self) -> List[str]:
        """Current keys, least- to most-recently used."""
        with self._lock:
            return list(self._entries)

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()

    def get(self, key: str) -> Optional[Any]:
        """The cached value (marking it recently used), or ``None``."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return self._entries[key]
            self.stats.misses += 1
            return None

    def put(self, key: str, value: Any) -> None:
        """Insert (or refresh) an entry, evicting beyond the bounds."""
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            self._evict_locked()

    def get_or_build(self, key: str, builder: Callable[[], Any]) -> Any:
        """The cached value for ``key``, building it on a miss.

        Concurrent misses on one key run ``builder`` once; the losers
        block until the winner publishes.  A failed build releases the
        waiters (they retry, typically re-raising the same error).
        """
        while True:
            wait_for: Optional[threading.Event] = None
            with self._lock:
                if key in self._entries:
                    self._entries.move_to_end(key)
                    self.stats.hits += 1
                    return self._entries[key]
                event = self._building.get(key)
                if event is None:
                    self.stats.misses += 1
                    event = threading.Event()
                    self._building[key] = event
                else:
                    self.stats.in_flight_waits += 1
                    wait_for = event
            if wait_for is not None:
                wait_for.wait()
                continue
            try:
                value = builder()
            finally:
                with self._lock:
                    self._building.pop(key, None)
                event.set()
            self.put(key, value)
            return value

    # ------------------------------------------------------------------
    def _evict_locked(self) -> None:
        if self.max_entries is not None:
            while len(self._entries) > self.max_entries:
                evicted_key, _ = self._entries.popitem(last=False)
                self.stats.evictions += 1
                logger.debug("artifact cache evicted %s (entry bound)", evicted_key)
        if self.max_bytes is not None:
            while len(self._entries) > 1 and self._total_bytes() > self.max_bytes:
                evicted_key, _ = self._entries.popitem(last=False)
                self.stats.evictions += 1
                logger.debug("artifact cache evicted %s (byte bound)", evicted_key)

    def _total_bytes(self) -> int:
        return sum(
            int(getattr(value, "nbytes", 0)) for value in self._entries.values()
        )

    # ------------------------------------------------------------------
    def publish_stats(self, tracer: Any) -> None:
        """Emit the counters to an obs tracer (``serve.artifacts.*``)."""
        stats = self.stats
        tracer.add("serve.artifacts.hits", stats.hits)
        tracer.add("serve.artifacts.misses", stats.misses)
        tracer.add("serve.artifacts.evictions", stats.evictions)
        tracer.add("serve.artifacts.in_flight_waits", stats.in_flight_waits)
