"""Portfolio routing: run several configurations, keep the best result.

Different instances favor different knobs (the weight-mode ablation shows
congestion-driven weights winning case06 while delay-driven weights win
case07); a portfolio amortizes that uncertainty the way contest entries
do with restarts.  Results are compared by (legality, critical delay) and
the winner is returned with the full per-config scoreboard.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.arch.system import MultiFpgaSystem
from repro.core.config import RouterConfig
from repro.core.router import RoutingResult, SynergisticRouter
from repro.netlist.netlist import Netlist
from repro.timing.delay import DelayModel


def default_portfolio(base: Optional[RouterConfig] = None) -> Dict[str, RouterConfig]:
    """The standard four-config portfolio.

    Derived from ``base`` (or the defaults): the auto pipeline, both
    forced weight modes, and a rip-everything negotiation variant.
    """
    base = base if base is not None else RouterConfig()
    return {
        "auto": base,
        "delay-weights": dataclasses.replace(base, weight_mode="delay"),
        "congestion-weights": dataclasses.replace(base, weight_mode="congestion"),
        "full-ripup": dataclasses.replace(base, ripup_factor=float("inf")),
    }


@dataclass
class PortfolioOutcome:
    """Scoreboard of one portfolio run.

    Attributes:
        best_name: the winning configuration's name.
        best: the winning result.
        scores: per-config (critical delay, conflicts, runtime seconds).
    """

    best_name: str
    best: RoutingResult
    scores: Dict[str, Tuple[float, int, float]] = field(default_factory=dict)

    def table(self) -> List[str]:
        """Human-readable scoreboard rows."""
        rows = [f"{'config':22s} {'delay':>9s} {'conf':>6s} {'time(s)':>8s}"]
        for name, (delay, conflicts, runtime) in self.scores.items():
            marker = "  <- best" if name == self.best_name else ""
            rows.append(
                f"{name:22s} {delay:9.1f} {conflicts:6d} {runtime:8.2f}{marker}"
            )
        return rows


class PortfolioRouter:
    """Routes with every configuration of a portfolio and keeps the best."""

    def __init__(
        self,
        system: MultiFpgaSystem,
        netlist: Netlist,
        delay_model: Optional[DelayModel] = None,
        portfolio: Optional[Dict[str, RouterConfig]] = None,
    ) -> None:
        netlist.validate_against(system.num_dies)
        self.system = system
        self.netlist = netlist
        self.delay_model = delay_model if delay_model is not None else DelayModel()
        self.portfolio = portfolio if portfolio is not None else default_portfolio()
        if not self.portfolio:
            raise ValueError("portfolio must contain at least one config")

    def route(self) -> PortfolioOutcome:
        """Run the portfolio; best = legal first, then smallest delay."""
        best_name: Optional[str] = None
        best: Optional[RoutingResult] = None
        scores: Dict[str, Tuple[float, int, float]] = {}
        for name, config in self.portfolio.items():
            start = time.perf_counter()
            result = SynergisticRouter(
                self.system, self.netlist, self.delay_model, config
            ).route()
            runtime = time.perf_counter() - start
            scores[name] = (result.critical_delay, result.conflict_count, runtime)
            if best is None or self._better(result, best):
                best_name, best = name, result
        assert best is not None and best_name is not None
        return PortfolioOutcome(best_name=best_name, best=best, scores=scores)

    @staticmethod
    def _better(candidate: RoutingResult, incumbent: RoutingResult) -> bool:
        """Legality dominates; then the smaller critical delay wins."""
        candidate_key = (candidate.conflict_count > 0, candidate.critical_delay)
        incumbent_key = (incumbent.conflict_count > 0, incumbent.critical_delay)
        return candidate_key < incumbent_key
