"""Incremental (ECO) rerouting.

Emulation flows iterate: after an engineering change order only a few
nets differ, and re-running the full router discards a known-good
solution.  :class:`EcoRouter` supports two incremental operations:

* :meth:`EcoRouter.reroute_nets` — rip up and re-route a chosen set of
  nets of an existing solution (e.g. timing-failing ones) under the
  current congestion picture, then re-run phase II.
* :meth:`EcoRouter.migrate` — carry a solution over to a *new* netlist:
  connections of nets whose name and pins are unchanged keep their paths;
  only new or modified nets are routed.

Both preserve untouched nets' topology unless an SLL overflow forces
negotiation (disturbed nets are reported, never hidden).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Set

from repro.arch.system import MultiFpgaSystem
from repro.core.config import RouterConfig
from repro.core.cost import EdgeCostModel
from repro.core.incidence import TdmIncidence
from repro.core.ordering import estimate_edge_weights, floyd_warshall, order_connections
from repro.core.pathfinder import NegotiationState
from repro.core.router import TdmAssigner
from repro.netlist.netlist import Netlist
from repro.route.dijkstra import dijkstra_path
from repro.route.graph import RoutingGraph
from repro.route.solution import RoutingSolution
from repro.timing.analysis import TimingAnalyzer
from repro.timing.delay import DelayModel


@dataclass
class EcoResult:
    """Output of an incremental routing operation.

    Attributes:
        solution: the updated solution (paths, ratios and wires).
        critical_delay: Eq. 1 objective after the update.
        conflict_count: remaining SLL overflow.
        rerouted_connections: connections whose path was (re)computed.
        preserved_connections: connections whose path was carried over.
        disturbed_nets: untouched nets that negotiation had to move.
    """

    solution: RoutingSolution
    critical_delay: float
    conflict_count: int
    rerouted_connections: int = 0
    preserved_connections: int = 0
    disturbed_nets: Set[int] = field(default_factory=set)


class EcoRouter:
    """Incremental router over an existing solution."""

    def __init__(
        self,
        system: MultiFpgaSystem,
        delay_model: Optional[DelayModel] = None,
        config: Optional[RouterConfig] = None,
    ) -> None:
        self.system = system
        self.delay_model = delay_model if delay_model is not None else DelayModel()
        self.config = config if config is not None else RouterConfig()

    # ------------------------------------------------------------------
    def reroute_nets(
        self,
        solution: RoutingSolution,
        net_indices: Iterable[int],
        prev_incidence: Optional["TdmIncidence"] = None,
    ) -> EcoResult:
        """Rip up and re-route the given nets of an existing solution.

        Args:
            solution: the solution whose nets to reroute.
            net_indices: nets to rip up.
            prev_incidence: TDM incidence of ``solution``, when the caller
                holds one (e.g. an emulation loop issuing repeated ECOs);
                lets phase II patch it instead of cold-rebuilding when the
                rerouted set stays small.
        """
        netlist = solution.netlist
        targets = set(net_indices)
        for net_index in sorted(targets):
            if not 0 <= net_index < netlist.num_nets:
                raise ValueError(f"unknown net index {net_index}")
        fresh = solution.copy_topology()
        dirty = [
            conn.index
            for conn in netlist.connections
            if conn.net_index in targets
        ]
        for conn_index in dirty:
            fresh.clear_path(conn_index)
        return self._route_missing(
            netlist, fresh, protected=None, prev_incidence=prev_incidence
        )

    def migrate(
        self,
        old_solution: RoutingSolution,
        new_netlist: Netlist,
    ) -> EcoResult:
        """Carry a solution to a changed netlist, routing only the delta.

        A net carries over when the new netlist has a net of the same
        name, source die and sink dies; its connections inherit the old
        paths.  Everything else is routed incrementally.
        """
        old_netlist = old_solution.netlist
        fresh = RoutingSolution(self.system, new_netlist)
        preserved = 0
        for net in new_netlist.nets:
            old_net = old_netlist.net_by_name(net.name)
            if (
                old_net is None
                or old_net.source_die != net.source_die
                or old_net.sink_dies != net.sink_dies
            ):
                continue
            old_conns = {
                conn.sink_die: conn.index
                for conn in old_netlist.connections_of(old_net.index)
            }
            for conn in new_netlist.connections_of(net.index):
                old_index = old_conns.get(conn.sink_die)
                if old_index is None:
                    continue
                path = old_solution.path(old_index)
                if path is not None:
                    fresh.set_path(conn.index, list(path))
                    preserved += 1
        result = self._route_missing(new_netlist, fresh, protected=None)
        result.preserved_connections = preserved
        return result

    # ------------------------------------------------------------------
    def _route_missing(
        self,
        netlist: Netlist,
        solution: RoutingSolution,
        protected: Optional[Set[int]],
        prev_incidence: Optional["TdmIncidence"] = None,
    ) -> EcoResult:
        """Route every unrouted connection, negotiate, re-run phase II."""
        graph = RoutingGraph(self.system)
        weights = estimate_edge_weights(graph, netlist, self.config.weight_mode)
        dist = floyd_warshall(graph, weights)
        cost_model = EdgeCostModel(graph, self.delay_model, self.config, weights)

        state = NegotiationState(graph)
        paths: List[Optional[List[int]]] = [None] * netlist.num_connections
        for conn in netlist.connections:
            path = solution.path(conn.index)
            if path is not None:
                paths[conn.index] = list(path)
                state.add_path(conn.net_index, list(path))

        missing = [i for i, path in enumerate(paths) if path is None]
        order = order_connections(netlist, dist)
        rank = {conn_index: position for position, conn_index in enumerate(order)}
        missing.sort(key=lambda i: rank[i])

        def route_one(conn_index: int) -> None:
            conn = netlist.connections[conn_index]
            net_edges = state.net_edges(conn.net_index)
            demand = state.demand
            cost = cost_model.cost

            def edge_cost(edge_index: int, frm: int, to: int) -> float:
                return cost(edge_index, demand[edge_index], edge_index in net_edges)

            path = dijkstra_path(
                graph.adjacency, conn.source_die, conn.sink_die, edge_cost
            )
            if path is None:
                raise RuntimeError(f"connection {conn_index} unroutable")
            paths[conn_index] = path
            state.add_path(conn.net_index, path)

        rerouted = set(missing)
        for conn_index in missing:
            route_one(conn_index)

        # Negotiate remaining overflow, disturbing other nets only if
        # needed; the victim-selection quota keeps disturbance minimal.
        net_weight = [0.0] * netlist.num_nets
        for conn in netlist.connections:
            weight = float(dist[conn.source_die, conn.sink_die])
            net_weight[conn.net_index] = max(net_weight[conn.net_index], weight)
        disturbed: Set[int] = set()
        initially_routed_nets = {
            conn.net_index
            for conn in netlist.connections
            if conn.index not in rerouted
        }
        import math

        for _ in range(self.config.max_reroute_iterations):
            overflowed = state.overflowed_sll_edges()
            if not overflowed:
                break
            cost_model.add_history(overflowed)
            victims: Set[int] = set()
            for edge_index in overflowed:
                overuse = state.overuse(edge_index)
                nets = state.nets_on_edge(edge_index)
                nets.sort(key=lambda n: (net_weight[n], n))
                quota = int(math.ceil(self.config.ripup_factor * overuse))
                victims.update(nets[:quota])
            victim_conns = sorted(
                (
                    conn_index
                    for net_index in victims
                    for conn_index in netlist.connection_indices_of(net_index)
                    if paths[conn_index] is not None
                ),
                key=lambda conn_index: rank[conn_index],
            )
            disturbed.update(victims & initially_routed_nets)
            for conn_index in victim_conns:
                conn = netlist.connections[conn_index]
                state.remove_path(conn.net_index, paths[conn_index])
                paths[conn_index] = None
            for conn_index in victim_conns:
                route_one(conn_index)
                rerouted.add(conn_index)

        final = RoutingSolution(self.system, netlist)
        for conn_index, path in enumerate(paths):
            if path is not None:
                final.set_path(conn_index, path)

        TdmAssigner(self.system, netlist, self.delay_model, self.config).assign(
            final,
            prev_incidence=prev_incidence,
            changed_connections=sorted(rerouted),
        )
        analyzer = TimingAnalyzer(self.system, netlist, self.delay_model)
        critical = (
            analyzer.critical_delay(final) if netlist.num_connections else 0.0
        )
        return EcoResult(
            solution=final,
            critical_delay=critical,
            conflict_count=final.conflict_count(),
            rerouted_connections=len(rerouted),
            disturbed_nets=disturbed,
        )
