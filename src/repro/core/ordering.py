"""Weight estimation and connection ordering (Section III-B).

Before any path search, the router estimates a routing weight per edge,
runs Floyd–Warshall over those weights, and orders connections by the
weight of their shortest source-to-sink path (descending; ties broken by
ascending net fanout).  Long, hard connections are thus routed first, when
the routing fabric is still empty.
"""

from __future__ import annotations

import enum
from typing import List, Sequence

import numpy as np

from repro.netlist.netlist import Netlist
from repro.route.graph import RoutingGraph


class WeightMode(enum.Enum):
    """Which edge family is encouraged during initial routing."""

    #: Demand is low: weight TDM edges high (``||V|| + 1``) and SLL edges
    #: low (1) so paths prefer cheap, plentiful SLL hops for less delay.
    DELAY_DRIVEN = "delay"
    #: Demand is high: weight SLL edges high so paths spread onto TDM edges
    #: and avoid SLL congestion.
    CONGESTION_DRIVEN = "congestion"


def estimate_sll_pressure(graph: RoutingGraph, netlist: Netlist) -> float:
    """Worst-edge SLL demand/capacity ratio under static hop-shortest paths.

    Every connection is walked along a hop-count-shortest path and the
    distinct nets per SLL edge are counted — a capacity-blind upper-bound
    sketch of how hard the SLL fabric would be hit without negotiation.
    """
    from repro.route.dijkstra import dijkstra_all, extract_path

    sll_edges = graph.sll_edge_indices
    if sll_edges.size == 0 or netlist.num_connections == 0:
        return 0.0
    nets_per_edge = [set() for _ in range(graph.num_edges)]
    prev_by_source = {}
    # Connections share (source, sink) pairs heavily — on an n-die system
    # there are at most n*(n-1) pairs — so the hop-shortest path's SLL
    # edges are resolved once per pair, not once per connection.
    sll_edges_of_pair = {}
    edge_of = graph.edge_index_between
    is_tdm = graph.is_tdm.tolist()
    unit = lambda e, a, b: 1.0  # noqa: E731 - tiny local cost fn
    for conn in netlist.connections:
        pair = (conn.source_die, conn.sink_die)
        edges = sll_edges_of_pair.get(pair)
        if edges is None:
            prev = prev_by_source.get(conn.source_die)
            if prev is None:
                _, prev = dijkstra_all(graph.adjacency, conn.source_die, unit)
                prev_by_source[conn.source_die] = prev
            path = extract_path(prev, conn.source_die, conn.sink_die)
            edges = [
                edge_index
                for edge_index in (
                    edge_of(frm, to) for frm, to in zip(path, path[1:])
                )
                if not is_tdm[edge_index]
            ]
            sll_edges_of_pair[pair] = edges
        net_index = conn.net_index
        for edge_index in edges:
            nets_per_edge[edge_index].add(net_index)
    return max(
        len(nets_per_edge[int(e)]) / float(graph.capacity[int(e)])
        for e in sll_edges
    )


def select_weight_mode(
    graph: RoutingGraph,
    netlist: Netlist,
    pressure_threshold: float = 1.0,
) -> WeightMode:
    """Apply the paper's demand-threshold rule to pick the weight mode.

    The paper switches modes when the per-die net count crosses half of
    the SLL edge capacity.  We measure the equivalent quantity directly:
    the estimated worst-edge SLL utilization under capacity-blind
    hop-shortest routing (:func:`estimate_sll_pressure`).  Below the
    threshold, SLL edges are plentiful and the delay-driven weights apply;
    at or above it, the congestion-driven weights keep nets off the SLL
    fabric.
    """
    if estimate_sll_pressure(graph, netlist) < pressure_threshold:
        return WeightMode.DELAY_DRIVEN
    return WeightMode.CONGESTION_DRIVEN


def estimate_edge_weights(
    graph: RoutingGraph,
    netlist: Netlist,
    mode: str = "auto",
) -> np.ndarray:
    """Per-edge routing weights for ordering (and SLL base costs).

    Args:
        graph: the routing graph.
        netlist: the design.
        mode: ``"auto"`` applies :func:`select_weight_mode`; ``"delay"`` or
            ``"congestion"`` force a mode.

    Returns:
        Array of ``num_edges`` float weights: 1 for the encouraged edge
        family and ``num_dies + 1`` for the discouraged one.
    """
    if mode == "auto":
        selected = select_weight_mode(graph, netlist)
    elif mode == "delay":
        selected = WeightMode.DELAY_DRIVEN
    elif mode == "congestion":
        selected = WeightMode.CONGESTION_DRIVEN
    else:
        raise ValueError(f"unknown weight mode {mode!r}")
    high = float(graph.num_dies + 1)
    weights = np.ones(graph.num_edges, dtype=np.float64)
    if selected is WeightMode.DELAY_DRIVEN:
        weights[graph.is_tdm] = high
    else:
        weights[~graph.is_tdm] = high
    return weights


def floyd_warshall(graph: RoutingGraph, edge_weights: Sequence[float]) -> np.ndarray:
    """All-pairs shortest-path weights over the die graph.

    Args:
        graph: the routing graph.
        edge_weights: one non-negative weight per edge.

    Returns:
        A ``(num_dies, num_dies)`` matrix of path weights (``inf`` for
        unreachable pairs, 0 on the diagonal).
    """
    n = graph.num_dies
    dist = np.full((n, n), np.inf, dtype=np.float64)
    np.fill_diagonal(dist, 0.0)
    for edge_index in range(graph.num_edges):
        a = int(graph.die_a[edge_index])
        b = int(graph.die_b[edge_index])
        w = float(edge_weights[edge_index])
        if w < dist[a, b]:
            dist[a, b] = w
            dist[b, a] = w
    for k in range(n):
        # Vectorized relaxation: dist = min(dist, dist[:, k] + dist[k, :]).
        np.minimum(dist, dist[:, k : k + 1] + dist[k : k + 1, :], out=dist)
    return dist


def order_connections(
    netlist: Netlist,
    dist: np.ndarray,
) -> List[int]:
    """Routing order of connections (Section III-B).

    Connections with larger routing weight (shortest-path weight from their
    source die to their sink die) come first; among equal weights, nets
    with fewer fanouts have priority; remaining ties break on connection
    index for determinism.
    """
    # Plain-list views: the key function runs once per connection and
    # numpy scalar indexing would dominate it.
    dist_rows = dist.tolist()
    fanouts = [netlist.net(net_index).fanout for net_index in range(netlist.num_nets)]
    connections = netlist.connections

    def key(conn_index: int):
        conn = connections[conn_index]
        weight = dist_rows[conn.source_die][conn.sink_die]
        return (-weight, fanouts[conn.net_index], conn_index)

    return sorted(range(netlist.num_connections), key=key)
