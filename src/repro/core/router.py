"""Top-level synergistic router (Fig. 3's overall flow) and the standalone
phase II assigner used to refine foreign topologies (Fig. 5(a))."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.core.config import RouterConfig
from repro.core.incidence import TdmIncidence, build_incidence
from repro.core.initial_routing import InitialRouter, InitialRoutingStats
from repro.core.lagrangian import LagrangianTdmAssigner, LrHistory
from repro.core.legalization import TdmLegalizer
from repro.core.wire_assignment import WireAssigner, WireAssignmentStats
from repro.arch.system import MultiFpgaSystem
from repro.netlist.netlist import Netlist
from repro.obs import TelemetrySnapshot, Tracer, get_logger
from repro.parallel import ParallelExecutor, resolve_workers
from repro.route.solution import RoutingSolution
from repro.timing.analysis import TimingAnalyzer, TimingReport
from repro.timing.delay import DelayModel

logger = get_logger(__name__)

#: Span names of the three Fig. 5(b) phases (obs timer keys).
PHASE_IR = "phase.initial_routing"
PHASE_TA = "phase.tdm_assignment"
PHASE_LGWA = "phase.legalization_wire_assignment"

#: Span name of the timing-analysis passes between refinement rounds.
#: Not part of the Fig. 5(b) phase accounting, but without it the trace
#: profiler would attribute analysis time to ``(untracked)``.
SPAN_TIMING = "timing.analysis"


def parallel_run_info(config: RouterConfig) -> Dict[str, Any]:
    """How a run's worker pools will be sized under ``config``.

    The resolved count is what :class:`~repro.parallel.ParallelExecutor`
    would use (an explicit ``num_workers`` verbatim; ``None`` via the
    ``REPRO_WORKERS`` env var, else the paper default) — recorded in run
    reports and bench rows so perf comparisons can see the actual
    parallelism, not just the request.
    """
    workers, from_env = resolve_workers(config.num_workers)
    return {
        "backend": config.parallel_backend,
        "requested_workers": config.num_workers,
        "resolved_workers": workers,
        "workers_from_env": from_env,
        "num_shards": config.num_shards,
        "deterministic_merge": config.deterministic_merge,
    }


@dataclass
class PhaseTimes:
    """Wall-clock seconds per phase (the Fig. 5(b) breakdown).

    Since the obs layer landed this is a *derived view*: the router
    accumulates the phases as :mod:`repro.obs` spans (``phase.*`` timer
    keys) and projects them into this dataclass via :meth:`from_tracer`.

    Attributes:
        initial_routing: phase I (IR).
        tdm_assignment: Lagrangian initial ratio assignment (TA).
        legalization_wire_assignment: legalization + wire assignment
            (LG & WA).
    """

    initial_routing: float = 0.0
    tdm_assignment: float = 0.0
    legalization_wire_assignment: float = 0.0

    @classmethod
    def from_tracer(
        cls,
        tracer: Tracer,
        baseline: Optional[Tuple[float, float, float]] = None,
    ) -> "PhaseTimes":
        """Project a tracer's ``phase.*`` span timers into phase times.

        Args:
            tracer: the tracer the router instrumented its phases on.
            baseline: timer values ``(IR, TA, LG&WA)`` captured before the
                run, subtracted so a re-used tracer yields per-run times.
        """
        base = baseline if baseline is not None else (0.0, 0.0, 0.0)
        return cls(
            initial_routing=tracer.timer(PHASE_IR) - base[0],
            tdm_assignment=tracer.timer(PHASE_TA) - base[1],
            legalization_wire_assignment=tracer.timer(PHASE_LGWA) - base[2],
        )

    @property
    def total(self) -> float:
        """Total routing runtime."""
        return (
            self.initial_routing
            + self.tdm_assignment
            + self.legalization_wire_assignment
        )

    def fractions(self) -> Dict[str, float]:
        """Per-phase share of the total runtime (empty phases at 0)."""
        total = self.total
        if total <= 0:
            return {"IR": 0.0, "TA": 0.0, "LG & WA": 0.0}
        return {
            "IR": self.initial_routing / total,
            "TA": self.tdm_assignment / total,
            "LG & WA": self.legalization_wire_assignment / total,
        }


@dataclass
class RoutingResult:
    """Everything a routing run produces.

    Attributes:
        solution: paths, ratios and wires.
        critical_delay: the objective value (Eq. 1).
        conflict_count: total SLL overflow (#CONF; 0 for a legal result).
        phase_times: runtime breakdown.
        timing: full timing report.
        lr_history: Lagrangian convergence history (None if phase II was
            skipped because no net crosses a TDM edge).
        initial_stats: phase I diagnostics.
        wire_stats: wire-assignment counters.
        telemetry: aggregate obs metrics of the run (counters, gauges,
            span timers, histograms); serialized into the run report by
            :func:`repro.obs.build_run_report`.
        degraded: True when a wall-clock budget
            (``RouterConfig.wall_clock_budget_seconds``) cut the run
            short; the solution is the best-so-far legal state and the
            run report carries the same flag (docs/resilience.md).
        parallel_info: how the run's worker pools were sized — backend,
            requested vs resolved worker count, whether ``REPRO_WORKERS``
            supplied it, shard/merge settings.  Recorded in run reports
            and ``BENCH_*.json`` so perf-sentinel comparisons are
            apples-to-apples (docs/performance.md).
    """

    solution: RoutingSolution
    critical_delay: float
    conflict_count: int
    phase_times: PhaseTimes
    timing: TimingReport
    lr_history: Optional[LrHistory] = None
    initial_stats: Optional[InitialRoutingStats] = None
    wire_stats: Optional[WireAssignmentStats] = None
    timing_reroute_moves: int = 0
    telemetry: Optional[TelemetrySnapshot] = None
    degraded: bool = False
    parallel_info: Optional[Dict[str, Any]] = None

    @property
    def is_legal(self) -> bool:
        """Whether the topology is overlap-free on SLL edges."""
        return self.conflict_count == 0


class TdmAssigner:
    """Phase II standalone: LR ratios, legalization, wire assignment.

    Runs the paper's full TDM ratio pipeline on *any* routed topology —
    ours or a baseline's (the Fig. 5(a) experiment).
    """

    def __init__(
        self,
        system: MultiFpgaSystem,
        netlist: Netlist,
        delay_model: Optional[DelayModel] = None,
        config: Optional[RouterConfig] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.system = system
        self.netlist = netlist
        self.delay_model = delay_model if delay_model is not None else DelayModel()
        self.config = config if config is not None else RouterConfig()
        self.tracer = tracer if tracer is not None else Tracer()

    def _executor(self) -> ParallelExecutor:
        workers = self.config.num_workers
        # The paper's rule: auto-size only above 200k nets, 1 below.
        # ``None`` is forwarded so the executor resolves it (REPRO_WORKERS
        # env override, else the paper's min(10, cpu_count) default).
        if (
            workers is None
            and self.netlist.num_nets <= self.config.parallel_net_threshold
        ):
            workers = 1
        return ParallelExecutor(
            workers,
            tracer=self.tracer,
            max_retries=self.config.worker_max_retries,
            retry_backoff=self.config.worker_retry_backoff_seconds,
        )

    def assign(
        self,
        solution: RoutingSolution,
        prev_incidence: Optional[TdmIncidence] = None,
        changed_connections: Optional[list] = None,
    ) -> Optional[LrHistory]:
        """Assign ratios and wires in place; returns the LR history."""
        history, _ = self.assign_with_stats(
            solution,
            prev_incidence=prev_incidence,
            changed_connections=changed_connections,
        )
        return history

    def assign_with_stats(
        self,
        solution: RoutingSolution,
        prev_incidence: Optional[TdmIncidence] = None,
        changed_connections: Optional[list] = None,
    ) -> "tuple[Optional[LrHistory], Optional[WireAssignmentStats]]":
        """Like :meth:`assign` but also returns wire-assignment counters.

        Args:
            solution: the routed topology to assign ratios and wires for.
            prev_incidence: incidence of the topology this solution was
                derived from (e.g. before an ECO); enables the incremental
                rebuild when few connections changed.
            changed_connections: connection indices whose path differs
                from ``prev_incidence``'s topology.
        """
        tracer = self.tracer
        incidence, _ = build_incidence(
            self.system,
            self.netlist,
            solution,
            self.delay_model,
            previous=prev_incidence,
            changed_connections=changed_connections,
            incremental_fraction=self.config.incremental_rebuild_fraction,
            tracer=tracer,
        )
        if incidence.num_pairs == 0:
            return None, None
        with self._executor() as executor:
            with tracer.span(PHASE_TA):
                lr = LagrangianTdmAssigner(incidence, self.config, tracer=tracer)
                lr_result = lr.solve()
            with tracer.span(PHASE_LGWA):
                legalizer = TdmLegalizer(
                    incidence, self.config, executor, tracer=tracer
                )
                legal = legalizer.legalize(lr_result.ratios)
                incidence.write_ratios(solution, legal.ratios)
                assigner = WireAssigner(incidence, self.config, executor, tracer=tracer)
                stats = assigner.assign(
                    solution, legal.ratios, legal.wire_budgets, legal.criticality
                )
        return lr_result.history, stats


class SynergisticRouter:
    """The paper's die-level router: phase I then phase II.

    Args:
        system: the multi-FPGA system.
        netlist: the die-level partitioned design.
        delay_model: delay constants (defaults match DESIGN.md).
        config: tuning knobs for both phases.
        tracer: obs tracer receiving spans, counters and per-iteration
            events; defaults to a fresh null-sink tracer so an
            uninstrumented run pays one attribute check per hot call site.
        checkpoint: duck-typed writer with ``save(barrier, payload)``
            (e.g. :class:`repro.resilience.CheckpointManager`); when set,
            the run persists its state at every barrier of
            docs/resilience.md so it can be resumed bit-identically.
        artifacts: optional warm per-topology state
            (:class:`repro.core.artifacts.RoutingArtifacts` for this
            case and pricing config) forwarded to phase I; reuses the
            prebuilt graph/ordering/seed trees, bit-identical to a cold
            run (docs/serving.md).
        executor: optional externally pooled
            :class:`~repro.parallel.ParallelExecutor` serving phase II.
            The router never closes an external executor — the owner
            (e.g. :class:`repro.serve.RoutingService`, which shares one
            pool across requests) does; when absent the router creates
            and closes its own.
    """

    def __init__(
        self,
        system: MultiFpgaSystem,
        netlist: Netlist,
        delay_model: Optional[DelayModel] = None,
        config: Optional[RouterConfig] = None,
        tracer: Optional[Tracer] = None,
        checkpoint: Optional[Any] = None,
        artifacts: Optional[Any] = None,
        executor: Optional[ParallelExecutor] = None,
    ) -> None:
        netlist.validate_against(system.num_dies)
        self.system = system
        self.netlist = netlist
        self.delay_model = delay_model if delay_model is not None else DelayModel()
        self.config = config if config is not None else RouterConfig()
        self.tracer = tracer if tracer is not None else Tracer()
        self.checkpoint = checkpoint
        self.artifacts = artifacts
        self.executor = executor

    def route(self, resume: Optional[Mapping[str, Any]] = None) -> RoutingResult:
        """Run both phases (plus the timing-driven outer loop).

        Args:
            resume: a ``{"barrier": ..., "payload": ...}`` mapping from a
                checkpoint (use :func:`repro.resilience.resume` rather
                than building one by hand).  The run restores the
                barrier's state and falls through into the ordinary
                control flow, so the result is bit-identical to an
                uninterrupted run.
        """
        tracer = self.tracer
        checkpoint = self.checkpoint
        # Timer values before the run: route() may be called repeatedly on
        # one tracer, and PhaseTimes must cover this run only.
        baseline = (
            tracer.timer(PHASE_IR),
            tracer.timer(PHASE_TA),
            tracer.timer(PHASE_LGWA),
        )
        budget = self.config.wall_clock_budget_seconds
        deadline = tracer.elapsed() + budget if budget is not None else None
        degraded = False

        barrier = resume["barrier"] if resume is not None else None
        payload = resume["payload"] if resume is not None else None

        # --- Phase I (run, resume mid-negotiation, or restore) ---------
        initial_stats: Optional[InitialRoutingStats] = None
        lr_history = wire_stats = multipliers = incidence = None
        moves = 0
        start_round = 0
        phase2_state = "run"
        if barrier is None or barrier == "phase1.ordering":
            # phase1.ordering carries no loop state: the ordering is
            # recomputed deterministically, so resume == fresh run.
            with tracer.span(PHASE_IR):
                initial = InitialRouter(
                    self.system,
                    self.netlist,
                    self.delay_model,
                    self.config,
                    tracer=tracer,
                    artifacts=self.artifacts,
                )
                solution = initial.route(checkpoint=checkpoint, deadline=deadline)
            initial_stats = initial.stats
            degraded |= initial.stats.degraded
        elif barrier == "phase1.round":
            with tracer.span(PHASE_IR):
                initial = InitialRouter(
                    self.system,
                    self.netlist,
                    self.delay_model,
                    self.config,
                    tracer=tracer,
                    artifacts=self.artifacts,
                )
                solution = initial.route(
                    resume=payload, checkpoint=checkpoint, deadline=deadline
                )
            initial_stats = initial.stats
            degraded |= initial.stats.degraded
        elif barrier == "phase1.done":
            solution = self._restore_topology(payload["paths"])
            initial_stats = InitialRoutingStats.from_dict(payload["stats"])
            degraded |= initial_stats.degraded
        elif barrier in ("phase2.lr", "phase2.legalized"):
            solution = self._restore_topology(payload["paths"])
            initial_stats = self._initial_stats_from(payload)
            phase2_state = ("resume", barrier, payload)
        elif barrier in ("phase2.assigned", "phase2.round", "final"):
            from repro.io.json_format import solution_from_dict

            solution = solution_from_dict(
                payload["solution"], self.system, self.netlist
            )
            initial_stats = self._initial_stats_from(payload)
            multipliers = self._multipliers_from(payload.get("multipliers"))
            lr_history = (
                LrHistory.from_dict(payload["lr_history"])
                if payload.get("lr_history") is not None
                else None
            )
            wire_stats = self._wire_stats_from(payload.get("wire_stats"))
            moves = int(payload.get("moves", 0))
            degraded |= bool(payload.get("degraded", False))
            if barrier == "final":
                phase2_state = "done"
                start_round = self.config.timing_reroute_rounds
            else:
                phase2_state = "assigned"
                start_round = int(payload.get("timing_round", -1)) + 1
        else:
            raise ValueError(f"unknown resume barrier {barrier!r}")
        if initial_stats is not None:
            degraded |= initial_stats.degraded

        # One executor serves every phase II stage of every round; its
        # thread pool (when parallel) is spawned once and reused.  An
        # external executor (the serving layer's shared pool) outlives
        # the run and is never closed here.
        owns_executor = self.executor is None
        executor = (
            self.executor
            if self.executor is not None
            else TdmAssigner(
                self.system, self.netlist, self.delay_model, self.config, tracer=tracer
            )._executor()
        )
        try:
            analyzer = TimingAnalyzer(self.system, self.netlist, self.delay_model)
            if phase2_state == "run":
                lr_history, wire_stats, multipliers, incidence = self._run_phase2(
                    solution,
                    executor=executor,
                    checkpoint=checkpoint,
                    deadline=deadline,
                    initial_stats=initial_stats,
                )
            elif isinstance(phase2_state, tuple):
                _, p2_barrier, p2_payload = phase2_state
                lr_history, wire_stats, multipliers, incidence = (
                    self._resume_phase2(solution, p2_barrier, p2_payload, executor)
                )
            if lr_history is not None and lr_history.budget_stopped:
                degraded = True
            phase2_ran = phase2_state == "run" or isinstance(phase2_state, tuple)
            if checkpoint is not None and phase2_ran and lr_history is not None:
                checkpoint.save(
                    "phase2.assigned",
                    self._phase2_payload(
                        solution,
                        multipliers,
                        lr_history,
                        wire_stats,
                        initial_stats,
                        timing_round=-1,
                        moves=0,
                        degraded=degraded,
                    ),
                )
            with tracer.span(SPAN_TIMING):
                timing = analyzer.analyze(solution)

            # Timing-driven outer loop: reroute measured-critical
            # connections, re-assign ratios, keep only strict improvements.
            if (
                phase2_state != "done"
                and timing.critical_connection >= 0
                and self.config.timing_reroute_rounds
            ):
                from repro.core.timing_reroute import TimingDrivenRefiner

                refiner = TimingDrivenRefiner(
                    self.system, self.netlist, self.delay_model, self.config
                )
                for round_index in range(
                    start_round, self.config.timing_reroute_rounds
                ):
                    if deadline is not None and tracer.elapsed() > deadline:
                        degraded = True
                        logger.warning(
                            "budget exhausted before timing-reroute round "
                            "%d; keeping best-so-far solution",
                            round_index,
                        )
                        break
                    # The refinement search counts as initial-routing work,
                    # so it accumulates into the same phase timer.
                    with tracer.span(PHASE_IR, kind="timing_reroute"):
                        # ``timing`` is always an analysis of the current
                        # ``solution``, so the refiner need not re-run one.
                        outcome = refiner.refine(solution, report=timing)
                    if outcome.solution is None:
                        break
                    candidate = outcome.solution
                    # The previous round's multipliers warm-start the
                    # re-solve (the topology barely changed, so λ is nearly
                    # right already), and the round's changed-connection
                    # set lets the incidence rebuild incrementally.
                    cand_lr, cand_wires, cand_multipliers, cand_incidence = (
                        self._run_phase2(
                            candidate,
                            warm_start=multipliers,
                            executor=executor,
                            prev_incidence=incidence,
                            changed_connections=outcome.changed_connections,
                            deadline=deadline,
                        )
                    )
                    if cand_lr is not None and cand_lr.budget_stopped:
                        degraded = True
                    with tracer.span(SPAN_TIMING):
                        cand_timing = analyzer.analyze(candidate)
                    improved = (
                        cand_timing.critical_delay < timing.critical_delay - 1e-9
                    )
                    if tracer.enabled:
                        tracer.event(
                            "timing_reroute.round",
                            round=round_index,
                            moves=outcome.moves,
                            candidate_delay=cand_timing.critical_delay,
                            incumbent_delay=timing.critical_delay,
                            accepted=improved,
                        )
                    if improved:
                        solution = candidate
                        timing = cand_timing
                        incidence = cand_incidence
                        lr_history = cand_lr if cand_lr is not None else lr_history
                        wire_stats = (
                            cand_wires if cand_wires is not None else wire_stats
                        )
                        multipliers = (
                            cand_multipliers
                            if cand_multipliers is not None
                            else multipliers
                        )
                        moves += outcome.moves
                        if checkpoint is not None:
                            checkpoint.save(
                                "phase2.round",
                                self._phase2_payload(
                                    solution,
                                    multipliers,
                                    lr_history,
                                    wire_stats,
                                    initial_stats,
                                    timing_round=round_index,
                                    moves=moves,
                                    degraded=degraded,
                                ),
                            )
                    else:
                        break
        finally:
            if owns_executor:
                executor.close()
        tracer.add("timing_reroute.moves", moves)

        times = PhaseTimes.from_tracer(tracer, baseline)
        conflict_count = solution.conflict_count()
        if degraded:
            tracer.gauge("router.degraded", 1.0)
        logger.info(
            "routing done: critical delay %.3f, %d conflicts, "
            "%.2fs (IR %.2fs, TA %.2fs, LG&WA %.2fs)%s",
            timing.critical_delay,
            conflict_count,
            times.total,
            times.initial_routing,
            times.tdm_assignment,
            times.legalization_wire_assignment,
            " [degraded: budget exhausted]" if degraded else "",
        )
        result = RoutingResult(
            solution=solution,
            critical_delay=timing.critical_delay,
            conflict_count=conflict_count,
            phase_times=times,
            timing=timing,
            lr_history=lr_history,
            initial_stats=initial_stats,
            wire_stats=wire_stats,
            timing_reroute_moves=moves,
            telemetry=tracer.snapshot(),
            degraded=degraded,
            parallel_info=parallel_run_info(self.config),
        )
        if checkpoint is not None:
            checkpoint.save(
                "final",
                self._phase2_payload(
                    solution,
                    multipliers,
                    lr_history,
                    wire_stats,
                    initial_stats,
                    timing_round=self.config.timing_reroute_rounds,
                    moves=moves,
                    degraded=degraded,
                ),
            )
        return result

    # ------------------------------------------------------------------
    # Checkpoint payload helpers (formats in docs/resilience.md)
    # ------------------------------------------------------------------
    def _restore_topology(self, paths: List[Optional[List[int]]]) -> RoutingSolution:
        """A solution holding the checkpointed paths (no ratios/wires)."""
        solution = RoutingSolution(self.system, self.netlist)
        for conn_index, path in enumerate(paths):
            if path is not None:
                solution.set_path(conn_index, [int(d) for d in path])
        return solution

    @staticmethod
    def _paths_payload(solution: RoutingSolution) -> List[Optional[List[int]]]:
        """Per-connection die paths, JSON-ready."""
        return [
            list(solution.path(i)) if solution.path(i) is not None else None
            for i in range(solution.netlist.num_connections)
        ]

    @staticmethod
    def _multipliers_from(data: Optional[List[float]]) -> Optional[np.ndarray]:
        return None if data is None else np.asarray(data, dtype=np.float64)

    @staticmethod
    def _multipliers_payload(multipliers) -> Optional[List[float]]:
        return None if multipliers is None else [float(x) for x in multipliers]

    @staticmethod
    def _wire_stats_from(data: Optional[Mapping[str, int]]):
        if data is None:
            return None
        return WireAssignmentStats(**{k: int(v) for k, v in data.items()})

    @staticmethod
    def _wire_stats_payload(stats: Optional[WireAssignmentStats]):
        if stats is None:
            return None
        return {
            "wires_used": stats.wires_used,
            "nets_assigned": stats.nets_assigned,
            "overflow_bumps": stats.overflow_bumps,
            "critical_moves": stats.critical_moves,
        }

    @staticmethod
    def _initial_stats_from(
        payload: Mapping[str, Any]
    ) -> Optional[InitialRoutingStats]:
        data = payload.get("initial_stats")
        return InitialRoutingStats.from_dict(data) if data is not None else None

    def _phase2_payload(
        self,
        solution: RoutingSolution,
        multipliers,
        lr_history: Optional[LrHistory],
        wire_stats: Optional[WireAssignmentStats],
        initial_stats: Optional[InitialRoutingStats],
        *,
        timing_round: int,
        moves: int,
        degraded: bool,
    ) -> Dict[str, Any]:
        """Payload of the full-solution barriers (assigned/round/final)."""
        from repro.io.json_format import solution_to_dict

        return {
            "solution": solution_to_dict(solution),
            "multipliers": self._multipliers_payload(multipliers),
            "lr_history": lr_history.to_dict() if lr_history is not None else None,
            "wire_stats": self._wire_stats_payload(wire_stats),
            "initial_stats": (
                initial_stats.to_dict() if initial_stats is not None else None
            ),
            "timing_round": timing_round,
            "moves": moves,
            "degraded": degraded,
        }

    def _resume_phase2(
        self,
        solution: RoutingSolution,
        barrier: str,
        payload: Mapping[str, Any],
        executor: ParallelExecutor,
    ) -> "tuple[Optional[LrHistory], Optional[WireAssignmentStats], object, TdmIncidence]":
        """Finish phase II from a ``phase2.lr``/``phase2.legalized`` payload.

        The incidence is cold-rebuilt (bit-equal to any incremental
        build), the checkpointed ratios replace the skipped LR solve, and
        legalization/wire assignment continue exactly as the uninterrupted
        run would have.
        """
        tracer = self.tracer
        incidence, _ = build_incidence(
            self.system, self.netlist, solution, self.delay_model, tracer=tracer
        )
        multipliers = self._multipliers_from(payload.get("multipliers"))
        lr_history = LrHistory.from_dict(payload["lr_history"])
        with tracer.span(PHASE_LGWA):
            if barrier == "phase2.lr":
                ratios = np.asarray(payload["ratios"], dtype=np.float64)
                legal = TdmLegalizer(
                    incidence, self.config, executor, tracer=tracer
                ).legalize(ratios)
                legal_ratios = legal.ratios
                wire_budgets = legal.wire_budgets
                criticality = legal.criticality
            else:
                legal_ratios = np.asarray(
                    payload["legal_ratios"], dtype=np.float64
                )
                wire_budgets = {
                    (int(edge), int(direction)): int(budget)
                    for edge, direction, budget in payload["wire_budgets"]
                }
                criticality = (
                    np.asarray(payload["criticality"], dtype=np.float64)
                    if payload.get("criticality") is not None
                    else None
                )
            incidence.write_ratios(solution, legal_ratios)
            wire_stats = WireAssigner(
                incidence, self.config, executor, tracer=tracer
            ).assign(solution, legal_ratios, wire_budgets, criticality)
        return lr_history, wire_stats, multipliers, incidence

    def _run_phase2(
        self,
        solution: RoutingSolution,
        warm_start=None,
        executor: Optional[ParallelExecutor] = None,
        prev_incidence: Optional[TdmIncidence] = None,
        changed_connections=None,
        checkpoint: Optional[Any] = None,
        deadline: Optional[float] = None,
        initial_stats: Optional[InitialRoutingStats] = None,
    ) -> "tuple[Optional[LrHistory], Optional[WireAssignmentStats], object, TdmIncidence]":
        """LR + legalization + wire assignment on one topology.

        Each stage runs under its phase span (``phase.tdm_assignment`` /
        ``phase.legalization_wire_assignment``), so repeated calls from
        the timing-driven loop accumulate into the same phase timers.

        Args:
            solution: the topology to assign ratios and wires for.
            warm_start: multipliers from the previous round's solve.
            executor: a shared phase II executor (one is created — and
                closed — here when absent).
            prev_incidence: the previous round's incidence; together with
                ``changed_connections`` it enables the incremental
                rebuild (gated on
                ``config.incremental_rebuild_fraction``).
            changed_connections: connection indices rerouted since
                ``prev_incidence`` was built.
            checkpoint: when set (initial pass only — timing-round
                candidates may be rejected, so their intermediate states
                are not resumable), saves the ``phase2.lr`` and
                ``phase2.legalized`` barriers.
            deadline: wall-clock budget forwarded to the LR solve.
            initial_stats: phase I diagnostics embedded into checkpoint
                payloads.

        Returns the LR history, wire stats, the final multipliers (a warm
        start for the next timing-reroute round) and the incidence (the
        next round's ``prev_incidence``).
        """
        tracer = self.tracer
        incidence, delta = build_incidence(
            self.system,
            self.netlist,
            solution,
            self.delay_model,
            previous=prev_incidence,
            changed_connections=changed_connections,
            incremental_fraction=self.config.incremental_rebuild_fraction,
            tracer=tracer,
        )
        if not incidence.num_pairs:
            return None, None, None, incidence
        if delta is not None:
            warm_start = delta.map_multipliers(warm_start)
        owns_executor = executor is None
        if owns_executor:
            executor = TdmAssigner(
                self.system, self.netlist, self.delay_model, self.config, tracer=tracer
            )._executor()
        try:
            with tracer.span(PHASE_TA):
                lr_result = LagrangianTdmAssigner(
                    incidence, self.config, tracer=tracer
                ).solve(warm_start=warm_start, deadline=deadline)
            if checkpoint is not None:
                checkpoint.save(
                    "phase2.lr",
                    {
                        "paths": self._paths_payload(solution),
                        "ratios": [float(r) for r in lr_result.ratios],
                        "multipliers": self._multipliers_payload(
                            lr_result.multipliers
                        ),
                        "lr_history": lr_result.history.to_dict(),
                        "initial_stats": (
                            initial_stats.to_dict()
                            if initial_stats is not None
                            else None
                        ),
                    },
                )

            with tracer.span(PHASE_LGWA):
                legal = TdmLegalizer(
                    incidence, self.config, executor, tracer=tracer
                ).legalize(lr_result.ratios)
                if checkpoint is not None:
                    checkpoint.save(
                        "phase2.legalized",
                        {
                            "paths": self._paths_payload(solution),
                            "legal_ratios": [float(r) for r in legal.ratios],
                            "wire_budgets": [
                                [edge, direction, budget]
                                for (edge, direction), budget in sorted(
                                    legal.wire_budgets.items()
                                )
                            ],
                            "criticality": (
                                [float(c) for c in legal.criticality]
                                if legal.criticality is not None
                                else None
                            ),
                            "multipliers": self._multipliers_payload(
                                lr_result.multipliers
                            ),
                            "lr_history": lr_result.history.to_dict(),
                            "initial_stats": (
                                initial_stats.to_dict()
                                if initial_stats is not None
                                else None
                            ),
                        },
                    )
                incidence.write_ratios(solution, legal.ratios)
                wire_stats = WireAssigner(
                    incidence, self.config, executor, tracer=tracer
                ).assign(solution, legal.ratios, legal.wire_budgets, legal.criticality)
        finally:
            if owns_executor:
                executor.close()
        return lr_result.history, wire_stats, lr_result.multipliers, incidence
