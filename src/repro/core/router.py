"""Top-level synergistic router (Fig. 3's overall flow) and the standalone
phase II assigner used to refine foreign topologies (Fig. 5(a))."""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.config import RouterConfig
from repro.core.incidence import TdmIncidence
from repro.core.initial_routing import InitialRouter, InitialRoutingStats
from repro.core.lagrangian import LagrangianTdmAssigner, LrHistory
from repro.core.legalization import TdmLegalizer
from repro.core.wire_assignment import WireAssigner, WireAssignmentStats
from repro.arch.system import MultiFpgaSystem
from repro.netlist.netlist import Netlist
from repro.parallel import ParallelExecutor
from repro.route.solution import RoutingSolution
from repro.timing.analysis import TimingAnalyzer, TimingReport
from repro.timing.delay import DelayModel


@dataclass
class PhaseTimes:
    """Wall-clock seconds per phase (the Fig. 5(b) breakdown).

    Attributes:
        initial_routing: phase I (IR).
        tdm_assignment: Lagrangian initial ratio assignment (TA).
        legalization_wire_assignment: legalization + wire assignment
            (LG & WA).
    """

    initial_routing: float = 0.0
    tdm_assignment: float = 0.0
    legalization_wire_assignment: float = 0.0

    @property
    def total(self) -> float:
        """Total routing runtime."""
        return (
            self.initial_routing
            + self.tdm_assignment
            + self.legalization_wire_assignment
        )

    def fractions(self) -> Dict[str, float]:
        """Per-phase share of the total runtime (empty phases at 0)."""
        total = self.total
        if total <= 0:
            return {"IR": 0.0, "TA": 0.0, "LG & WA": 0.0}
        return {
            "IR": self.initial_routing / total,
            "TA": self.tdm_assignment / total,
            "LG & WA": self.legalization_wire_assignment / total,
        }


@dataclass
class RoutingResult:
    """Everything a routing run produces.

    Attributes:
        solution: paths, ratios and wires.
        critical_delay: the objective value (Eq. 1).
        conflict_count: total SLL overflow (#CONF; 0 for a legal result).
        phase_times: runtime breakdown.
        timing: full timing report.
        lr_history: Lagrangian convergence history (None if phase II was
            skipped because no net crosses a TDM edge).
        initial_stats: phase I diagnostics.
        wire_stats: wire-assignment counters.
    """

    solution: RoutingSolution
    critical_delay: float
    conflict_count: int
    phase_times: PhaseTimes
    timing: TimingReport
    lr_history: Optional[LrHistory] = None
    initial_stats: Optional[InitialRoutingStats] = None
    wire_stats: Optional[WireAssignmentStats] = None
    timing_reroute_moves: int = 0

    @property
    def is_legal(self) -> bool:
        """Whether the topology is overlap-free on SLL edges."""
        return self.conflict_count == 0


class TdmAssigner:
    """Phase II standalone: LR ratios, legalization, wire assignment.

    Runs the paper's full TDM ratio pipeline on *any* routed topology —
    ours or a baseline's (the Fig. 5(a) experiment).
    """

    def __init__(
        self,
        system: MultiFpgaSystem,
        netlist: Netlist,
        delay_model: Optional[DelayModel] = None,
        config: Optional[RouterConfig] = None,
    ) -> None:
        self.system = system
        self.netlist = netlist
        self.delay_model = delay_model if delay_model is not None else DelayModel()
        self.config = config if config is not None else RouterConfig()

    def _executor(self) -> ParallelExecutor:
        workers = self.config.num_workers
        if workers is None:
            # The paper's rule: 10 threads above 200k nets, 1 below.
            if self.netlist.num_nets > self.config.parallel_net_threshold:
                workers = min(10, os.cpu_count() or 1)
            else:
                workers = 1
        return ParallelExecutor(workers)

    def assign(self, solution: RoutingSolution) -> Optional[LrHistory]:
        """Assign ratios and wires in place; returns the LR history."""
        history, _ = self.assign_with_stats(solution)
        return history

    def assign_with_stats(
        self, solution: RoutingSolution
    ) -> "tuple[Optional[LrHistory], Optional[WireAssignmentStats]]":
        """Like :meth:`assign` but also returns wire-assignment counters."""
        incidence = TdmIncidence(self.system, self.netlist, solution, self.delay_model)
        if incidence.num_pairs == 0:
            return None, None
        executor = self._executor()
        lr = LagrangianTdmAssigner(incidence, self.config)
        lr_result = lr.solve()
        legalizer = TdmLegalizer(incidence, self.config, executor)
        legal = legalizer.legalize(lr_result.ratios)
        incidence.write_ratios(solution, legal.ratios)
        assigner = WireAssigner(incidence, self.config, executor)
        stats = assigner.assign(
            solution, legal.ratios, legal.wire_budgets, legal.criticality
        )
        return lr_result.history, stats


class SynergisticRouter:
    """The paper's die-level router: phase I then phase II.

    Args:
        system: the multi-FPGA system.
        netlist: the die-level partitioned design.
        delay_model: delay constants (defaults match DESIGN.md).
        config: tuning knobs for both phases.
    """

    def __init__(
        self,
        system: MultiFpgaSystem,
        netlist: Netlist,
        delay_model: Optional[DelayModel] = None,
        config: Optional[RouterConfig] = None,
    ) -> None:
        netlist.validate_against(system.num_dies)
        self.system = system
        self.netlist = netlist
        self.delay_model = delay_model if delay_model is not None else DelayModel()
        self.config = config if config is not None else RouterConfig()

    def route(self) -> RoutingResult:
        """Run both phases (plus the timing-driven outer loop)."""
        times = PhaseTimes()

        start = time.perf_counter()
        initial = InitialRouter(self.system, self.netlist, self.delay_model, self.config)
        solution = initial.route()
        times.initial_routing = time.perf_counter() - start

        lr_history, wire_stats, multipliers = self._run_phase2(solution, times)
        analyzer = TimingAnalyzer(self.system, self.netlist, self.delay_model)
        timing = analyzer.analyze(solution)

        # Timing-driven outer loop: reroute measured-critical connections,
        # re-assign ratios, keep only strict improvements.
        moves = 0
        if timing.critical_connection >= 0 and self.config.timing_reroute_rounds:
            from repro.core.timing_reroute import TimingDrivenRefiner

            refiner = TimingDrivenRefiner(
                self.system, self.netlist, self.delay_model, self.config
            )
            for _ in range(self.config.timing_reroute_rounds):
                start = time.perf_counter()
                outcome = refiner.refine(solution)
                refine_time = time.perf_counter() - start
                if outcome.solution is None:
                    break
                candidate = outcome.solution
                candidate_times = PhaseTimes()
                # The previous round's multipliers warm-start the re-solve:
                # the topology barely changed, so λ is nearly right already.
                cand_lr, cand_wires, cand_multipliers = self._run_phase2(
                    candidate, candidate_times, warm_start=multipliers
                )
                cand_timing = analyzer.analyze(candidate)
                # The refinement search counts as initial-routing work.
                times.initial_routing += refine_time
                times.tdm_assignment += candidate_times.tdm_assignment
                times.legalization_wire_assignment += (
                    candidate_times.legalization_wire_assignment
                )
                if cand_timing.critical_delay < timing.critical_delay - 1e-9:
                    solution = candidate
                    timing = cand_timing
                    lr_history = cand_lr if cand_lr is not None else lr_history
                    wire_stats = cand_wires if cand_wires is not None else wire_stats
                    multipliers = (
                        cand_multipliers if cand_multipliers is not None else multipliers
                    )
                    moves += outcome.moves
                else:
                    break

        return RoutingResult(
            solution=solution,
            critical_delay=timing.critical_delay,
            conflict_count=solution.conflict_count(),
            phase_times=times,
            timing=timing,
            lr_history=lr_history,
            initial_stats=initial.stats,
            wire_stats=wire_stats,
            timing_reroute_moves=moves,
        )

    def _run_phase2(
        self,
        solution: RoutingSolution,
        times: PhaseTimes,
        warm_start=None,
    ) -> "tuple[Optional[LrHistory], Optional[WireAssignmentStats], object]":
        """LR + legalization + wire assignment on one topology.

        Returns the LR history, wire stats and the final multipliers (a
        warm start for the next timing-reroute round).
        """
        assigner = TdmAssigner(self.system, self.netlist, self.delay_model, self.config)
        incidence = TdmIncidence(self.system, self.netlist, solution, self.delay_model)
        if not incidence.num_pairs:
            return None, None, None
        executor = assigner._executor()
        start = time.perf_counter()
        lr_result = LagrangianTdmAssigner(incidence, self.config).solve(
            warm_start=warm_start
        )
        times.tdm_assignment += time.perf_counter() - start

        start = time.perf_counter()
        legal = TdmLegalizer(incidence, self.config, executor).legalize(lr_result.ratios)
        incidence.write_ratios(solution, legal.ratios)
        wire_stats = WireAssigner(incidence, self.config, executor).assign(
            solution, legal.ratios, legal.wire_budgets, legal.criticality
        )
        times.legalization_wire_assignment += time.perf_counter() - start
        return lr_result.history, wire_stats, lr_result.multipliers
