"""Configuration of the synergistic router."""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Dict, Mapping, Optional


@dataclass(kw_only=True)
class RouterConfig:
    """Tuning knobs of both router phases.

    Construction is keyword-only: every knob must be named, so configs
    survive field reordering and read unambiguously at call sites.
    ``to_dict``/``from_dict`` give an exact round-trip used by
    checkpoints (:mod:`repro.resilience`) and the CLI's ``--config``.

    Phase I (initial routing):

    Attributes:
        mu_shared: the paper's µ for an edge already used by another
            connection of the same net (Section III-B; 1/2 in practice).
            Must be in (0, 1].
        max_reroute_iterations: negotiation rounds after the first pass;
            each round rips up and reroutes nets crossing overflowed SLL
            edges with increased history costs.
        history_increment: history-cost bump per overflow round for each
            overflowed SLL edge (PathFinder-style), as a fraction of the
            edge's base weight.
        present_penalty: multiplier applied per unit of *prospective*
            SLL overuse while searching (present-congestion term).
        ripup_factor: per overflowed SLL edge, rip up only
            ``ceil(factor * overuse)`` nets — the ones with the smallest
            routing weight, i.e. the cheapest to move — instead of every
            net on the edge.  Keeps critical nets on their short paths
            while the overflow drains; ``float("inf")`` restores the
            rip-everything behaviour.
        initial_batch_size: when set, the first routing pass runs in
            *batched* mode: connections are committed in waves of this
            size, with one frozen-cost Dijkstra per distinct source die
            per wave instead of one per connection.  5-20x faster on
            large instances at a small quality cost (the µ discount is
            skipped inside a wave); negotiation and all later phases stay
            exact.  ``None`` (default) keeps the paper's per-connection
            pass.
        steiner_fanout_threshold: when set, nets with at least this many
            die-crossing sinks are routed as one Steiner tree under the
            same Eq. 2 cost model (their per-connection paths are the
            tree paths) instead of connection by connection.  Broadcast
            trees get built atomically — the limit of what the µ discount
            encourages — at the cost of the per-connection ordering.
            ``None`` (default) keeps the paper's pure per-connection
            routing; ablated in the benchmarks.
        use_kernel: route phase I searches through the array-driven
            :class:`~repro.route.kernel.RoutingKernel` (flat CSR
            adjacency, precomputed cost vector, epoch-cached SSSP trees)
            instead of the closure-based reference search.  Exact: with
            per-connection cost syncs the kernel prices every edge
            bit-identically to the closure, so paths — and therefore all
            downstream results — are unchanged; it is simply faster.
            ``False`` restores the reference implementation (used by the
            equivalence tests and as an escape hatch).
        batched_negotiation: reroute each negotiation round's victims
            under costs frozen once per round (after rip-up), so victims
            sharing a source die reuse one cached SSSP tree instead of
            searching individually.  Rounds already freeze history, and
            the round's reroutes are few, so this is quality-neutral in
            practice; ``False`` keeps the exact per-connection reroute
            (each victim sees the demand committed by the previous one).
            Requires ``use_kernel``; ignored without it.
        weight_mode: ``"auto"`` applies the paper's rule (delay-driven
            weights when die demand is below half the SLL capacity,
            congestion-driven otherwise); ``"delay"``/``"congestion"``
            force one mode (used by the ablation benchmarks).
        timing_reroute_rounds: timing-driven outer rounds after phase II:
            each round reroutes only the *measured-critical* connections
            under a wire-ratio-aware delay cost, re-runs phase II, and
            keeps the result only if the critical delay improved (monotone
            by construction).  Guards the critical connection against the
            µ sharing discount trading its delay for edge usage; 0
            disables the loop (ablated in the benchmarks).

    Phase II (TDM ratio assignment):

    Attributes:
        lr_max_iterations: cap on Lagrangian-relaxation iterations
            (Algorithm 1's MaxIter).
        lr_epsilon: relative primal-dual gap threshold (Algorithm 1's ε).
        refine_margin_epsilon: Algorithm 2 stops once the margin between a
            directed edge's wire budget and its demand drops below this.
        num_workers: worker threads for the per-edge phase II work; the
            paper uses 10 threads for designs above 200k nets and 1
            otherwise — ``None`` selects by that rule.
        parallel_net_threshold: net count above which ``None`` workers
            resolves to the multi-threaded executor.
        incremental_rebuild_fraction: when a timing-reroute/ECO round
            changed strictly fewer than this fraction of the connections,
            phase II patches the previous
            :class:`~repro.core.incidence.TdmIncidence` instead of
            cold-rebuilding it (bit-identical either way).  ``0.0``
            forces cold rebuilds.

    Parallel routing (docs/performance.md):

    Attributes:
        parallel_backend: ``"thread"`` (default) keeps every executor a
            thread pool; ``"process"`` routes phase I's sharded first
            pass in ``multiprocessing`` spawn workers over shared-memory
            cost vectors — the only pool that scales past the GIL.
            Phase II stays on threads either way (its tasks close over
            unpicklable state, and numpy releases the GIL there).
        num_shards: spatial shards for the sharded first pass.  ``None``
            derives one shard per resolved worker; the count is always
            capped at the system's FPGA count.  Sharding engages only
            when it can help: process backend, more than one worker and
            more than one shard, plain (non-batched, non-Steiner,
            non-resumed) first pass.  Pin this when comparing
            fingerprints across worker counts — the shard plan, not the
            worker count, determines the routing schedule.
        deterministic_merge: apply shard results in fixed shard order
            (boundary connections first, then shard 0, 1, ...), making
            the routed result a pure function of inputs + shard plan —
            bit-identical across runs, worker counts and backends.
            ``False`` merges in completion order: same legality and
            negotiation guarantees, lower latency, unstable
            fingerprints.

    Resilience (docs/resilience.md):

    Attributes:
        wall_clock_budget_seconds: graceful-degradation budget.  When
            set, the router checks ``tracer.elapsed()`` against the
            deadline at phase I round boundaries, after each LR
            iteration and between timing-reroute rounds, and exits early
            with the best-so-far legal solution, flagging the result (and
            run report) ``degraded``.  ``None`` (default) never degrades.
        worker_max_retries: bounded retries for *transient* worker-task
            failures (:class:`repro.parallel.TransientWorkerError`, e.g.
            a killed worker) in the phase II executor.  Tasks are pure
            per-edge computations, so re-running one is idempotent; any
            other exception still fails fast.
        worker_retry_backoff_seconds: base sleep before a retry; doubles
            per attempt.
    """

    mu_shared: float = 0.5
    max_reroute_iterations: int = 30
    history_increment: float = 1.0
    present_penalty: float = 4.0
    weight_mode: str = "auto"
    ripup_factor: float = 2.0
    use_kernel: bool = True
    batched_negotiation: bool = False
    initial_batch_size: Optional[int] = None
    steiner_fanout_threshold: Optional[int] = None
    timing_reroute_rounds: int = 3

    lr_max_iterations: int = 100
    lr_epsilon: float = 1e-3
    refine_margin_epsilon: float = 1e-6
    num_workers: int = 1
    parallel_net_threshold: int = 200_000
    incremental_rebuild_fraction: float = 0.2

    parallel_backend: str = "thread"
    num_shards: Optional[int] = None
    deterministic_merge: bool = True

    wall_clock_budget_seconds: Optional[float] = None
    worker_max_retries: int = 2
    worker_retry_backoff_seconds: float = 0.01

    def __post_init__(self) -> None:
        if not 0.0 < self.mu_shared <= 1.0:
            raise ValueError("mu_shared must be in (0, 1]")
        if self.max_reroute_iterations < 0:
            raise ValueError("max_reroute_iterations must be non-negative")
        if self.history_increment < 0:
            raise ValueError("history_increment must be non-negative")
        if self.present_penalty < 0:
            raise ValueError("present_penalty must be non-negative")
        if self.ripup_factor <= 0:
            raise ValueError("ripup_factor must be positive")
        if self.initial_batch_size is not None and self.initial_batch_size <= 0:
            raise ValueError("initial_batch_size must be positive when set")
        if (
            self.steiner_fanout_threshold is not None
            and self.steiner_fanout_threshold < 2
        ):
            raise ValueError("steiner_fanout_threshold must be >= 2 when set")
        if self.weight_mode not in ("auto", "delay", "congestion"):
            raise ValueError("weight_mode must be auto, delay or congestion")
        if self.timing_reroute_rounds < 0:
            raise ValueError("timing_reroute_rounds must be non-negative")
        if self.lr_max_iterations <= 0:
            raise ValueError("lr_max_iterations must be positive")
        if self.lr_epsilon <= 0:
            raise ValueError("lr_epsilon must be positive")
        if self.refine_margin_epsilon < 0:
            raise ValueError("refine_margin_epsilon must be non-negative")
        if not 0.0 <= self.incremental_rebuild_fraction <= 1.0:
            raise ValueError("incremental_rebuild_fraction must be in [0, 1]")
        if self.parallel_backend not in ("thread", "process"):
            raise ValueError("parallel_backend must be thread or process")
        if self.num_shards is not None and self.num_shards < 1:
            raise ValueError("num_shards must be >= 1 when set")
        if (
            self.wall_clock_budget_seconds is not None
            and self.wall_clock_budget_seconds < 0
        ):
            raise ValueError("wall_clock_budget_seconds must be non-negative")
        if self.worker_max_retries < 0:
            raise ValueError("worker_max_retries must be non-negative")
        if self.worker_retry_backoff_seconds < 0:
            raise ValueError("worker_retry_backoff_seconds must be non-negative")

    # ------------------------------------------------------------------
    # Exact dict round-trip (checkpoints, CLI --config)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Field-name → value mapping; ``from_dict(to_dict())`` is exact.

        Every value is JSON-serializable (floats survive a JSON
        round-trip bit-exactly; ``float("inf")`` serializes as JSON
        ``Infinity``).
        """
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RouterConfig":
        """Build a config from a mapping, validating every key.

        Args:
            data: field-name → value mapping; may omit fields (defaults
                apply) but must not contain unknown keys.

        Raises:
            ValueError: on unknown keys or invalid field values.
        """
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown RouterConfig fields: {', '.join(unknown)}")
        return cls(**dict(data))
