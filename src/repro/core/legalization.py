"""TDM ratio legalization and margin-aware refinement (Section III-D).

Legalization turns the continuous LR ratios into legal ones:

1. Split each bidirectional TDM edge's physical wires between its two
   directions: ``ceil(Σ 1/r)`` wires per direction, then hand leftover
   wires to the busier direction.  Because the LR phase kept
   ``Σ 1/r <= cap_e - 1``, the two rounded budgets always fit in ``cap_e``.
2. Round every net ratio up to the nearest multiple of the TDM step ``p``.
3. Margin-aware refinement (Algorithm 2): rounding up leaves a margin
   between each directed edge's wire budget and its demand ``Σ 1/r``.  A
   priority queue repeatedly pops the most critical net (largest delay of
   a connection of the net crossing the edge) and lowers its ratio by one
   step while the margin affords it.

Each directed edge is independent, so edges can be processed in parallel
(the paper's OpenMP loop; our :class:`~repro.parallel.ParallelExecutor`).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.config import RouterConfig
from repro.core.incidence import TdmIncidence
from repro.obs import Tracer, get_logger
from repro.parallel import ParallelExecutor

logger = get_logger(__name__)


@dataclass
class LegalizationResult:
    """Output of legalization: legal per-pair ratios and wire budgets.

    Attributes:
        ratios: per-pair legalized ratios (positive multiples of the step).
        wire_budgets: physical wires granted to each (edge, direction).
        criticality: per-pair criticality after refinement (used to order
            wire assignment).
        refinement_steps: total number of ratio decreases applied by
            Algorithm 2.
    """

    ratios: np.ndarray
    wire_budgets: Dict[Tuple[int, int], int] = field(default_factory=dict)
    criticality: Optional[np.ndarray] = None
    refinement_steps: int = 0


class TdmLegalizer:
    """Legalizes and refines continuous TDM ratios."""

    def __init__(
        self,
        incidence: TdmIncidence,
        config: Optional[RouterConfig] = None,
        executor: Optional[ParallelExecutor] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.incidence = incidence
        self.config = config if config is not None else RouterConfig()
        self.executor = executor if executor is not None else ParallelExecutor(1)
        self.tracer = tracer if tracer is not None else Tracer()

    # ------------------------------------------------------------------
    def legalize(self, continuous_ratios: np.ndarray) -> LegalizationResult:
        """Run budget split, rounding and Algorithm 2 refinement."""
        inc = self.incidence
        if inc.num_pairs == 0:
            return LegalizationResult(ratios=np.zeros(0, dtype=np.float64))
        budgets = self._split_wire_budgets(continuous_ratios)
        step = inc.delay_model.tdm_step
        ratios = np.ceil(continuous_ratios / step - 1e-12).astype(np.int64) * step
        ratios = np.maximum(ratios, step).astype(np.float64)
        # Criticalities under the legalized ratios drive the refinement.
        delays = inc.connection_delays(ratios)
        criticality = inc.pair_criticality(delays)

        # CSR groups come out sorted by (edge, direction) and only exist
        # when a direction carries nets — exactly the budget keys.
        tasks = [
            (pairs, budgets[(edge_index, direction)])
            for edge_index, direction, pairs in inc.directed_edge_groups()
        ]
        steps = sum(
            self.executor.map(
                lambda task: self._refine_directed_edge(
                    task[0], task[1], ratios, criticality
                ),
                tasks,
            )
        )
        tracer = self.tracer
        tracer.add("legalization.refinement_steps", steps)
        tracer.add("legalization.directed_edges", len(tasks))
        # The post-refinement margin per directed edge (Algorithm 2's
        # leftover slack) — the Fig.-style histogram in the run report.
        for pairs, budget in tasks:
            margin = budget - float(np.sum(1.0 / ratios[pairs]))
            tracer.observe("legalization.margin", margin)
        logger.info(
            "legalization: %d refinement steps over %d directed edges",
            steps,
            len(tasks),
        )
        return LegalizationResult(
            ratios=ratios,
            wire_budgets=budgets,
            criticality=criticality,
            refinement_steps=steps,
        )

    # ------------------------------------------------------------------
    def _split_wire_budgets(
        self, continuous_ratios: np.ndarray
    ) -> Dict[Tuple[int, int], int]:
        """Assign each TDM edge's physical wires to its two directions."""
        inc = self.incidence
        budgets: Dict[Tuple[int, int], int] = {}
        # One vectorized reciprocal, then per-CSR-group slice sums.  The
        # slices hold the same elements in the same (ascending pair)
        # order as the old per-direction fancy-index gathers, so the
        # pairwise summation is bit-identical.
        grouped = (1.0 / continuous_ratios)[inc.dir_pairs]
        indptr = inc.dir_indptr
        demands_by_edge: Dict[int, List[float]] = {}
        for group, (edge_index, direction) in enumerate(
            zip(inc.dir_edge.tolist(), inc.dir_dir.tolist())
        ):
            demand = float(np.sum(grouped[indptr[group] : indptr[group + 1]]))
            demands_by_edge.setdefault(edge_index, [0.0, 0.0])[direction] = demand
        for edge_index, demands in demands_by_edge.items():
            capacity = inc.system.edge(edge_index).capacity
            needed = [int(math.ceil(d - 1e-9)) if d > 0 else 0 for d in demands]
            if sum(needed) > capacity:
                raise ValueError(
                    f"TDM edge {edge_index}: directional budgets {needed} "
                    f"exceed capacity {capacity} — LR invariant broken"
                )
            leftover = capacity - sum(needed)
            # Hand spare wires out; the busier direction gets the larger
            # share, widening the refinement margin where it matters most.
            busy = 0 if demands[0] >= demands[1] else 1
            if demands[0] > 0 and demands[1] > 0:
                needed[busy] += (leftover + 1) // 2
                needed[1 - busy] += leftover // 2
            elif demands[busy] > 0:
                needed[busy] += leftover
            for direction in (0, 1):
                if demands[direction] > 0:
                    budgets[(edge_index, direction)] = needed[direction]
        return budgets

    # ------------------------------------------------------------------
    def _refine_directed_edge(
        self,
        pairs: np.ndarray,
        budget: int,
        ratios: np.ndarray,
        criticality: np.ndarray,
    ) -> int:
        """Algorithm 2 on one directed TDM edge.

        Mutates ``ratios`` and ``criticality`` in place for the given pairs
        (disjoint across directed edges, so parallel calls never conflict).

        Returns:
            Number of single-step ratio decreases applied.
        """
        model = self.incidence.delay_model
        step = model.tdm_step
        crit_drop = model.d1 * step
        epsilon = self.config.refine_margin_epsilon
        margin = budget - float(np.sum(1.0 / ratios[pairs]))
        if margin <= epsilon:
            return 0
        # Plain-float mirrors for the heap loop: numpy scalar indexing
        # per pop/push would dominate it.  ``pairs`` is ascending, so
        # local positions preserve the pair-index tie-breaking.
        local_ratios = ratios[pairs].tolist()
        local_crit = criticality[pairs].tolist()
        heap: List[Tuple[float, int]] = [
            (-crit, position) for position, crit in enumerate(local_crit)
        ]
        heapq.heapify(heap)
        heappop = heapq.heappop
        heappushpop = heapq.heappushpop
        steps = 0
        # The loop is the textbook pop / maybe-push-back queue, phrased
        # with heappushpop: pushing the decreased net back and popping the
        # next one is a single sift, and when the net stays the most
        # critical it comes straight back with no heap traffic at all.
        # The popped sequence is exactly the pop-then-push one.
        item: Optional[Tuple[float, int]] = heap and heappop(heap) or None
        while item is not None and margin > epsilon:
            neg_crit, position = item
            ratio = local_ratios[position]
            if ratio <= step:
                # Already at the minimum legal ratio: drop it.
                item = heappop(heap) if heap else None
                continue
            delta = 1.0 / (ratio - step) - 1.0 / ratio
            if delta > margin - epsilon:
                # Cannot afford this net's decrease: drop it.
                item = heappop(heap) if heap else None
                continue
            local_ratios[position] = ratio - step
            crit = -neg_crit - crit_drop
            local_crit[position] = crit
            margin -= delta
            steps += 1
            item = heappushpop(heap, (-crit, position))
        if steps:
            ratios[pairs] = local_ratios
            criticality[pairs] = local_crit
        return steps
