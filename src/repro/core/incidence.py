"""Flat incidence arrays shared by the phase II algorithms.

Phase II reasons about *net edge uses* — (net, TDM edge, direction)
triples, the paper's ``r_ne`` index set — and about which uses each
connection's path crosses.  :class:`TdmIncidence` flattens both relations
into numpy index arrays once, so the Lagrangian iterations, legalization
criticalities and final delay evaluation are all O(1) vectorized passes.
This vectorization is the Python counterpart of the paper's per-edge /
per-connection OpenMP parallelism (DESIGN.md substitution 4).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.arch.edges import EdgeKind
from repro.arch.system import MultiFpgaSystem
from repro.netlist.netlist import Netlist
from repro.route.solution import NetEdgeUse, RoutingSolution
from repro.timing.delay import DelayModel


class TdmIncidence:
    """Vectorized view of a solution's TDM usage.

    Attributes:
        uses: the (net, edge, direction) triples, in a fixed order; the
            position of a triple is its *pair index*.
        pair_net / pair_edge / pair_dir: per-pair component arrays.
        pair_cap: per-pair capacity of the owning TDM edge.
        inc_conn / inc_pair: parallel arrays with one entry per TDM hop of
            every routed connection: connection index and pair index.
        conn_sll_delay: per-connection constant delay from SLL hops
            (``d_SLL_c``).
        conn_tdm_hops: per-connection number of TDM hops.
        conn_net: per-connection owning net index.
    """

    def __init__(
        self,
        system: MultiFpgaSystem,
        netlist: Netlist,
        solution: RoutingSolution,
        delay_model: DelayModel,
    ) -> None:
        self.system = system
        self.netlist = netlist
        self.delay_model = delay_model

        self.uses: List[NetEdgeUse] = solution.all_net_uses()
        self.use_index: Dict[NetEdgeUse, int] = {
            use: i for i, use in enumerate(self.uses)
        }
        self.num_pairs = len(self.uses)
        self.num_connections = netlist.num_connections

        self.pair_net = np.fromiter(
            (u[0] for u in self.uses), dtype=np.int64, count=self.num_pairs
        )
        self.pair_edge = np.fromiter(
            (u[1] for u in self.uses), dtype=np.int64, count=self.num_pairs
        )
        self.pair_dir = np.fromiter(
            (u[2] for u in self.uses), dtype=np.int64, count=self.num_pairs
        )
        capacities = [edge.capacity for edge in system.edges]
        self.pair_cap = np.fromiter(
            (capacities[u[1]] for u in self.uses),
            dtype=np.int64,
            count=self.num_pairs,
        )

        inc_conn: List[int] = []
        inc_pair: List[int] = []
        conn_sll = np.zeros(self.num_connections, dtype=np.float64)
        conn_tdm = np.zeros(self.num_connections, dtype=np.int64)
        conn_net = np.zeros(self.num_connections, dtype=np.int64)
        is_tdm = [edge.kind is EdgeKind.TDM for edge in system.edges]
        d_sll = delay_model.d_sll
        use_index = self.use_index
        for conn in netlist.connections:
            index = conn.index
            net_index = conn.net_index
            conn_net[index] = net_index
            sll_sum = 0.0
            tdm_hops = 0
            for edge_index, direction in solution.path_hops(index):
                if is_tdm[edge_index]:
                    inc_conn.append(index)
                    inc_pair.append(use_index[(net_index, edge_index, direction)])
                    tdm_hops += 1
                else:
                    sll_sum += d_sll
            conn_sll[index] = sll_sum
            conn_tdm[index] = tdm_hops
        self.inc_conn = np.asarray(inc_conn, dtype=np.int64)
        self.inc_pair = np.asarray(inc_pair, dtype=np.int64)
        self.conn_sll_delay = conn_sll
        self.conn_tdm_hops = conn_tdm
        self.conn_net = conn_net

        # Pair indices grouped per directed TDM edge, for legalization.
        self._edge_dir_pairs: Dict[Tuple[int, int], List[int]] = {}
        for i, (net, edge_index, direction) in enumerate(self.uses):
            self._edge_dir_pairs.setdefault((edge_index, direction), []).append(i)

    # ------------------------------------------------------------------
    # Vectorized evaluations
    # ------------------------------------------------------------------
    def connection_delays(self, pair_ratios: np.ndarray) -> np.ndarray:
        """Per-connection delays given per-pair TDM ratios.

        ``d_c = d_SLL_c + Σ (d0 + d1 * r_pair)`` over the connection's TDM
        hops (Eq. 4 summed along the path).
        """
        model = self.delay_model
        delays = self.conn_sll_delay + model.d0 * self.conn_tdm_hops
        if self.inc_conn.size:
            tdm_part = np.bincount(
                self.inc_conn,
                weights=model.d1 * pair_ratios[self.inc_pair],
                minlength=self.num_connections,
            )
            delays = delays + tdm_part
        return delays

    def pair_criticality(self, connection_delays: np.ndarray) -> np.ndarray:
        """Per-pair criticality: the largest delay of a connection crossing it.

        This is the paper's "criticality of a net on a TDM edge" used by
        Algorithm 2 (the refinement priority).
        """
        criticality = np.zeros(self.num_pairs, dtype=np.float64)
        if self.inc_conn.size:
            np.maximum.at(criticality, self.inc_pair, connection_delays[self.inc_conn])
        return criticality

    def pairs_of_directed_edge(self, edge_index: int, direction: int) -> List[int]:
        """Pair indices of all nets crossing a directed TDM edge."""
        return self._edge_dir_pairs.get((edge_index, direction), [])

    def directed_edges(self) -> List[Tuple[int, int]]:
        """The (edge, direction) keys that actually carry nets."""
        return sorted(self._edge_dir_pairs.keys())

    def ratios_from_solution(self, solution: RoutingSolution) -> np.ndarray:
        """Gather ``solution.ratios`` into a per-pair array."""
        ratios = np.empty(self.num_pairs, dtype=np.float64)
        for i, use in enumerate(self.uses):
            ratios[i] = solution.ratios[use]
        return ratios

    def write_ratios(self, solution: RoutingSolution, pair_ratios: np.ndarray) -> None:
        """Scatter a per-pair ratio array into ``solution.ratios``."""
        for i, use in enumerate(self.uses):
            solution.ratios[use] = float(pair_ratios[i])
