"""Flat incidence arrays shared by the phase II algorithms.

Phase II reasons about *net edge uses* — (net, TDM edge, direction)
triples, the paper's ``r_ne`` index set — and about which uses each
connection's path crosses.  :class:`TdmIncidence` flattens both relations
into numpy index arrays once, so the Lagrangian iterations, legalization
criticalities and final delay evaluation are all O(1) vectorized passes.
This vectorization is the Python counterpart of the paper's per-edge /
per-connection OpenMP parallelism (DESIGN.md substitution 4).

Construction itself is vectorized too: the per-connection hop arrays
(memoized on the solution per distinct die path) are concatenated into
flat ``(hop connection, hop edge, hop direction)`` columns, the pair set
is deduplicated with one ``np.unique`` pass in first-occurrence order,
and the per-directed-edge grouping that legalization and wire assignment
consume is a CSR slice (``dir_indptr`` / ``dir_pairs``) instead of a
dict of Python lists.

Two more entry points support the timing-reroute/ECO refine loops:

* :meth:`TdmIncidence.incremental` patches only the rows of connections
  that were actually rerouted and returns an :class:`IncidenceDelta`
  that remaps per-pair state (ratios, criticalities) and the LR
  multipliers onto the new pair index space, so each refine round
  warm-starts instead of cold-rebuilding.
* :func:`build_incidence` is the gated front door used by the router and
  the standalone assigner: it picks the incremental path when few enough
  connections changed and publishes the ``incidence.*`` obs counters.

:func:`build_reference` keeps the original pure-Python construction; the
equivalence property tests (and the phase II benchmark's reference
pipeline) compare against it bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from repro.arch.edges import EdgeKind
from repro.arch.system import MultiFpgaSystem
from repro.netlist.netlist import Netlist
from repro.route.solution import NetEdgeUse, RoutingSolution
from repro.timing.delay import DelayModel


class TdmIncidence:
    """Vectorized view of a solution's TDM usage.

    Attributes:
        uses: the (net, edge, direction) triples, in a fixed order; the
            position of a triple is its *pair index*.
        pair_net / pair_edge / pair_dir: per-pair component arrays.
        pair_cap: per-pair capacity of the owning TDM edge.
        inc_conn / inc_pair: parallel arrays with one entry per TDM hop of
            every routed connection: connection index and pair index
            (sorted by connection, hops in path order).
        conn_sll_delay: per-connection constant delay from SLL hops
            (``d_SLL_c``).
        conn_tdm_hops: per-connection number of TDM hops.
        conn_net: per-connection owning net index.
        dir_pairs / dir_indptr: CSR grouping of pair indices per directed
            TDM edge: group ``g`` owns ``dir_pairs[dir_indptr[g]:
            dir_indptr[g + 1]]`` (ascending pair indices); groups are
            sorted by (edge, direction).
        dir_edge / dir_dir: per-group edge index and direction.
    """

    def __init__(
        self,
        system: MultiFpgaSystem,
        netlist: Netlist,
        solution: RoutingSolution,
        delay_model: DelayModel,
    ) -> None:
        self.system = system
        self.netlist = netlist
        self.delay_model = delay_model
        self.num_connections = netlist.num_connections
        self._init_edge_columns()

        num_conns = self.num_connections
        conn_net = netlist.connection_net_indices()
        # Connections share few distinct die paths, so gather the hop
        # arrays once per distinct path and expand them onto connections
        # with one fancy index instead of concatenating one tiny array
        # pair per connection.
        get_path = solution.path
        hop_arrays = solution.path_hop_arrays
        path_ids: Dict[Tuple[int, ...], int] = {}
        uniq_edges: List[np.ndarray] = []
        uniq_dirs: List[np.ndarray] = []
        pid_list: List[int] = []
        for index in range(num_conns):
            path = get_path(index)
            pid = path_ids.get(path)
            if pid is None:
                if path is None:
                    raise ValueError(f"connection {index} is unrouted")
                pid = len(uniq_edges)
                path_ids[path] = pid
                edges, dirs = hop_arrays(index)
                uniq_edges.append(edges)
                uniq_dirs.append(dirs)
            pid_list.append(pid)
        if uniq_edges:
            path_len = np.fromiter(
                (a.shape[0] for a in uniq_edges),
                dtype=np.int64,
                count=len(uniq_edges),
            )
            path_start = np.zeros(path_len.shape[0] + 1, dtype=np.int64)
            np.cumsum(path_len, out=path_start[1:])
            cat_edges = np.concatenate(uniq_edges)
            cat_dirs = np.concatenate(uniq_dirs)
            pid = np.array(pid_list, dtype=np.int64)
            counts = path_len[pid]
            indptr = np.zeros(num_conns + 1, dtype=np.int64)
            np.cumsum(counts, out=indptr[1:])
            # Per-connection arange into the concatenated path arrays.
            gather = np.repeat(path_start[pid] - indptr[:-1], counts)
            gather += np.arange(indptr[-1], dtype=np.int64)
            hop_edge = cat_edges[gather]
            hop_dir = cat_dirs[gather]
        else:
            counts = np.zeros(num_conns, dtype=np.int64)
            hop_edge = np.zeros(0, dtype=np.int64)
            hop_dir = np.zeros(0, dtype=np.int64)
        hop_conn = np.repeat(np.arange(num_conns, dtype=np.int64), counts)

        tdm_mask = self._edge_is_tdm[hop_edge]
        sll_conn = hop_conn[~tdm_mask]
        conn_sll = np.bincount(
            sll_conn,
            weights=np.full(sll_conn.size, delay_model.d_sll),
            minlength=num_conns,
        )
        self._assemble(
            inc_conn=hop_conn[tdm_mask],
            inc_edge=hop_edge[tdm_mask],
            inc_dir=hop_dir[tdm_mask],
            conn_net=conn_net,
            conn_sll_delay=conn_sll,
        )

    # ------------------------------------------------------------------
    # Construction internals
    # ------------------------------------------------------------------
    def _init_edge_columns(self) -> None:
        """Per-system-edge kind/capacity columns used by construction."""
        edges = self.system.edges
        num_edges = len(edges)
        self._edge_is_tdm = np.fromiter(
            (edge.kind is EdgeKind.TDM for edge in edges),
            dtype=bool,
            count=num_edges,
        )
        self._edge_capacity = np.fromiter(
            (edge.capacity for edge in edges), dtype=np.int64, count=num_edges
        )

    def _assemble(
        self,
        inc_conn: np.ndarray,
        inc_edge: np.ndarray,
        inc_dir: np.ndarray,
        conn_net: np.ndarray,
        conn_sll_delay: np.ndarray,
    ) -> None:
        """Derive all pair/group arrays from flat per-TDM-hop columns.

        ``inc_conn`` must be sorted by connection with hops in path order
        — exactly the order a scan over connections produces — so the
        pair set's first-occurrence order reproduces the historical
        grouped-by-net ordering (net indices are nondecreasing over
        connection indices by :class:`~repro.netlist.netlist.Netlist`
        construction).
        """
        num_conns = self.num_connections
        self.conn_net = conn_net
        self.conn_sll_delay = conn_sll_delay
        self.inc_conn = inc_conn
        self.conn_tdm_hops = np.bincount(inc_conn, minlength=num_conns).astype(
            np.int64, copy=False
        )

        num_edges = self._edge_capacity.shape[0]
        use_net = conn_net[inc_conn]
        keys = (use_net * num_edges + inc_edge) * 2 + inc_dir
        uniq, first, inverse = np.unique(
            keys, return_index=True, return_inverse=True
        )
        # np.unique sorts by key; recover first-occurrence order.
        order = np.argsort(first, kind="stable")
        rank = np.empty(order.shape[0], dtype=np.int64)
        rank[order] = np.arange(order.shape[0], dtype=np.int64)
        self.inc_pair = rank[inverse] if inverse.size else np.zeros(0, np.int64)
        first_in_order = first[order]
        self.pair_net = use_net[first_in_order]
        self.pair_edge = inc_edge[first_in_order]
        self.pair_dir = inc_dir[first_in_order]
        self.num_pairs = int(uniq.shape[0])
        self.pair_cap = self._edge_capacity[self.pair_edge]
        # Sorted encoded keys + their pair index, for incremental remaps.
        self._sorted_keys = uniq
        self._key_rank = rank

        # The tuple list and its reverse index are derived on demand (see
        # the `uses` / `use_index` properties): the LR/legalization hot
        # path never touches them.
        self._uses: Optional[List[NetEdgeUse]] = None
        self._use_index: Optional[Dict[NetEdgeUse, int]] = None

        # CSR grouping of pair indices per directed TDM edge, sorted by
        # (edge, direction); stable sort keeps pair indices ascending
        # within a group (the historical dict-of-lists append order).
        dir_key = self.pair_edge * 2 + self.pair_dir
        self.dir_pairs = np.argsort(dir_key, kind="stable").astype(
            np.int64, copy=False
        )
        group_keys, group_counts = np.unique(
            dir_key[self.dir_pairs], return_counts=True
        )
        self.dir_indptr = np.zeros(group_keys.shape[0] + 1, dtype=np.int64)
        np.cumsum(group_counts, out=self.dir_indptr[1:])
        self.dir_edge = group_keys // 2
        self.dir_dir = group_keys % 2
        self._dir_group_index: Dict[Tuple[int, int], int] = {
            key: g
            for g, key in enumerate(
                zip(self.dir_edge.tolist(), self.dir_dir.tolist())
            )
        }


    # ------------------------------------------------------------------
    # Lazy tuple views
    # ------------------------------------------------------------------
    @property
    def uses(self) -> List[NetEdgeUse]:
        """The (net, edge, direction) triples in pair-index order."""
        if self._uses is None:
            self._uses = list(
                zip(
                    self.pair_net.tolist(),
                    self.pair_edge.tolist(),
                    self.pair_dir.tolist(),
                )
            )
        return self._uses

    @property
    def use_index(self) -> Dict[NetEdgeUse, int]:
        """Reverse map from a use triple to its pair index."""
        if self._use_index is None:
            self._use_index = {use: i for i, use in enumerate(self.uses)}
        return self._use_index

    # ------------------------------------------------------------------
    # Incremental rebuild
    # ------------------------------------------------------------------
    @classmethod
    def incremental(
        cls,
        previous: "TdmIncidence",
        solution: RoutingSolution,
        changed_connections: Iterable[int],
    ) -> "IncidenceDelta":
        """Patch a previous incidence onto a partially rerouted solution.

        Args:
            previous: incidence of the pre-reroute topology.
            solution: the rerouted topology; every connection **not** in
                ``changed_connections`` must still have its previous path
                (the caller — timing reroute, ECO — knows exactly which
                connections it moved).
            changed_connections: indices of the rerouted connections.

        Returns:
            An :class:`IncidenceDelta` whose ``incidence`` equals a cold
            :class:`TdmIncidence` build on ``solution`` bit-for-bit, plus
            the old-to-new pair index mapping.

        Raises:
            ValueError: when the solution belongs to a different netlist
                or a changed index is out of range.
        """
        if previous.netlist is not solution.netlist:
            raise ValueError(
                "incremental rebuild requires the previous incidence and the "
                "solution to share one netlist"
            )
        num_conns = previous.num_connections
        changed = np.unique(np.fromiter(changed_connections, dtype=np.int64))
        if changed.size and (changed[0] < 0 or changed[-1] >= num_conns):
            raise ValueError("changed connection index out of range")
        changed_mask = np.zeros(num_conns, dtype=bool)
        changed_mask[changed] = True

        inc = cls.__new__(cls)
        inc.system = previous.system
        inc.netlist = previous.netlist
        inc.delay_model = previous.delay_model
        inc.num_connections = num_conns
        inc._edge_is_tdm = previous._edge_is_tdm
        inc._edge_capacity = previous._edge_capacity

        # Rows of unchanged connections carry over (triples reconstructed
        # from the previous pair columns).
        keep = ~changed_mask[previous.inc_conn]
        kept_pairs = previous.inc_pair[keep]
        old_conn = previous.inc_conn[keep]
        old_edge = previous.pair_edge[kept_pairs]
        old_dir = previous.pair_dir[kept_pairs]

        # Fresh rows (and SLL delays) for the changed connections only.
        counts = np.zeros(changed.size, dtype=np.int64)
        edge_parts: List[np.ndarray] = []
        dir_parts: List[np.ndarray] = []
        for i, conn_index in enumerate(changed.tolist()):
            edges, dirs = solution.path_hop_arrays(conn_index)
            counts[i] = edges.shape[0]
            edge_parts.append(edges)
            dir_parts.append(dirs)
        if edge_parts:
            ch_edge = np.concatenate(edge_parts)
            ch_dir = np.concatenate(dir_parts)
        else:
            ch_edge = np.zeros(0, dtype=np.int64)
            ch_dir = np.zeros(0, dtype=np.int64)
        ch_conn = np.repeat(changed, counts)
        tdm_mask = inc._edge_is_tdm[ch_edge]
        sll_rows = ch_conn[~tdm_mask]
        conn_sll = previous.conn_sll_delay.copy()
        if changed.size:
            fresh_sll = np.bincount(
                sll_rows,
                weights=np.full(sll_rows.size, previous.delay_model.d_sll),
                minlength=num_conns,
            )
            conn_sll[changed] = fresh_sll[changed]

        # Merge: each connection's rows are either all-old or all-new, so
        # a stable sort by connection restores the full scan order.
        merged_conn = np.concatenate([old_conn, ch_conn[tdm_mask]])
        merged_edge = np.concatenate([old_edge, ch_edge[tdm_mask]])
        merged_dir = np.concatenate([old_dir, ch_dir[tdm_mask]])
        order = np.argsort(merged_conn, kind="stable")
        inc._assemble(
            inc_conn=merged_conn[order],
            inc_edge=merged_edge[order],
            inc_dir=merged_dir[order],
            conn_net=previous.conn_net,
            conn_sll_delay=conn_sll,
        )

        # Old-pair -> new-pair mapping via the sorted key tables.
        num_edges = inc._edge_capacity.shape[0]
        old_keys = (
            previous.pair_net * num_edges + previous.pair_edge
        ) * 2 + previous.pair_dir
        pair_map = np.full(previous.num_pairs, -1, dtype=np.int64)
        if inc._sorted_keys.size:
            pos = np.searchsorted(inc._sorted_keys, old_keys)
            pos = np.minimum(pos, inc._sorted_keys.size - 1)
            found = inc._sorted_keys[pos] == old_keys
            pair_map[found] = inc._key_rank[pos[found]]
        new_pair_mask = np.ones(inc.num_pairs, dtype=bool)
        new_pair_mask[pair_map[pair_map >= 0]] = False
        return IncidenceDelta(
            incidence=inc,
            pair_map=pair_map,
            new_pair_mask=new_pair_mask,
            changed_connections=changed,
        )

    # ------------------------------------------------------------------
    # Vectorized evaluations
    # ------------------------------------------------------------------
    def connection_delays(
        self, pair_ratios: np.ndarray, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Per-connection delays given per-pair TDM ratios.

        ``d_c = d_SLL_c + Σ (d0 + d1 * r_pair)`` over the connection's TDM
        hops (Eq. 4 summed along the path).

        Args:
            pair_ratios: per-pair ratio array.
            out: optional preallocated output of shape
                ``(num_connections,)``; the sum is accumulated in place so
                repeated evaluations (the LR loop) skip the output
                allocations.
        """
        model = self.delay_model
        if out is None:
            delays = self.conn_sll_delay + model.d0 * self.conn_tdm_hops
            if self.inc_conn.size:
                tdm_part = np.bincount(
                    self.inc_conn,
                    weights=model.d1 * pair_ratios[self.inc_pair],
                    minlength=self.num_connections,
                )
                delays = delays + tdm_part
            return delays
        np.multiply(self.conn_tdm_hops, model.d0, out=out)
        np.add(out, self.conn_sll_delay, out=out)
        if self.inc_conn.size:
            weights = pair_ratios[self.inc_pair]
            np.multiply(weights, model.d1, out=weights)
            tdm_part = np.bincount(
                self.inc_conn, weights=weights, minlength=self.num_connections
            )
            np.add(out, tdm_part, out=out)
        return out

    def pair_criticality(self, connection_delays: np.ndarray) -> np.ndarray:
        """Per-pair criticality: the largest delay of a connection crossing it.

        This is the paper's "criticality of a net on a TDM edge" used by
        Algorithm 2 (the refinement priority).
        """
        criticality = np.zeros(self.num_pairs, dtype=np.float64)
        if self.inc_conn.size:
            np.maximum.at(criticality, self.inc_pair, connection_delays[self.inc_conn])
        return criticality

    # ------------------------------------------------------------------
    # Directed-edge grouping
    # ------------------------------------------------------------------
    @property
    def num_directed_edges(self) -> int:
        """Number of directed TDM edges that carry at least one net."""
        return int(self.dir_edge.shape[0])

    def pairs_of_directed_edge(self, edge_index: int, direction: int) -> List[int]:
        """Pair indices of all nets crossing a directed TDM edge."""
        return self.pair_slice_of_directed_edge(edge_index, direction).tolist()

    def pair_slice_of_directed_edge(
        self, edge_index: int, direction: int
    ) -> np.ndarray:
        """CSR slice view of a directed edge's pair indices (ascending).

        Empty array when the directed edge carries no nets.
        """
        group = self._dir_group_index.get((edge_index, direction))
        if group is None:
            return self.dir_pairs[:0]
        start, stop = self.dir_indptr[group], self.dir_indptr[group + 1]
        return self.dir_pairs[start:stop]

    def directed_edges(self) -> List[Tuple[int, int]]:
        """The (edge, direction) keys that actually carry nets, sorted."""
        return list(zip(self.dir_edge.tolist(), self.dir_dir.tolist()))

    def directed_edge_groups(self) -> Iterator[Tuple[int, int, np.ndarray]]:
        """Yield ``(edge_index, direction, pair_indices)`` per CSR group.

        The pair index array is a slice view into :attr:`dir_pairs`
        (ascending pair indices); groups come out sorted by
        (edge, direction).
        """
        indptr = self.dir_indptr
        for group, (edge_index, direction) in enumerate(
            zip(self.dir_edge.tolist(), self.dir_dir.tolist())
        ):
            yield edge_index, direction, self.dir_pairs[
                indptr[group] : indptr[group + 1]
            ]

    # ------------------------------------------------------------------
    # Solution scatter/gather
    # ------------------------------------------------------------------
    def ratios_from_solution(self, solution: RoutingSolution) -> np.ndarray:
        """Gather ``solution.ratios`` into a per-pair array."""
        return np.fromiter(
            map(solution.ratios.__getitem__, self.uses),
            dtype=np.float64,
            count=self.num_pairs,
        )

    def write_ratios(self, solution: RoutingSolution, pair_ratios: np.ndarray) -> None:
        """Scatter a per-pair ratio array into ``solution.ratios``."""
        solution.ratios.update(zip(self.uses, pair_ratios.tolist()))


@dataclass
class IncidenceDelta:
    """An incrementally rebuilt incidence plus the pair-space remapping.

    Attributes:
        incidence: the new incidence (bit-equal to a cold rebuild).
        pair_map: per *old* pair index, the new pair index, or ``-1`` when
            the pair no longer exists (its net left the edge).
        new_pair_mask: per *new* pair, ``True`` when the pair did not
            exist in the previous incidence.
        changed_connections: sorted connection indices that were patched.
    """

    incidence: TdmIncidence
    pair_map: np.ndarray
    new_pair_mask: np.ndarray
    changed_connections: np.ndarray

    def map_pair_values(
        self, old_values: np.ndarray, default: float = 0.0
    ) -> np.ndarray:
        """Remap a per-old-pair array onto the new pair index space.

        Pairs that survived keep their value; pairs new to this topology
        get ``default``.  Used to carry legalized ratios/criticalities
        across refine rounds.
        """
        new_values = np.full(self.incidence.num_pairs, default, dtype=np.float64)
        kept = self.pair_map >= 0
        new_values[self.pair_map[kept]] = np.asarray(
            old_values, dtype=np.float64
        )[kept]
        return new_values

    def map_multipliers(
        self, multipliers: Optional[np.ndarray]
    ) -> Optional[np.ndarray]:
        """Carry LR multipliers across the rebuild.

        λ lives in *connection* space (one multiplier per connection, Eq.
        8), and a reroute changes paths, not the connection set — so the
        warm start passes through unchanged.  Kept as an explicit step so
        a future per-pair multiplier scheme has one place to remap.
        """
        return multipliers


def build_incidence(
    system: MultiFpgaSystem,
    netlist: Netlist,
    solution: RoutingSolution,
    delay_model: DelayModel,
    previous: Optional[TdmIncidence] = None,
    changed_connections: Optional[Iterable[int]] = None,
    incremental_fraction: float = 0.0,
    tracer: Optional[object] = None,
) -> Tuple[TdmIncidence, Optional[IncidenceDelta]]:
    """Build an incidence, incrementally when few connections changed.

    The incremental path runs when a previous incidence and the changed
    connection set are given and the changed share is strictly below
    ``incremental_fraction`` (the router's
    ``RouterConfig.incremental_rebuild_fraction``, 20% by default;
    ``0.0`` forces cold rebuilds).  Publishes the ``incidence.*``
    counters on ``tracer`` when one is given.

    Returns:
        ``(incidence, delta)``; ``delta`` is ``None`` on a cold build.
    """
    changed: Optional[List[int]] = None
    if changed_connections is not None:
        changed = list(changed_connections)
    if (
        previous is not None
        and changed is not None
        and netlist.num_connections > 0
        and previous.netlist is netlist
        and len(changed) < incremental_fraction * netlist.num_connections
    ):
        delta = TdmIncidence.incremental(previous, solution, changed)
        if tracer is not None:
            tracer.add("incidence.incremental_builds", 1)
            tracer.add("incidence.patched_connections", len(changed))
        return delta.incidence, delta
    incidence = TdmIncidence(system, netlist, solution, delay_model)
    if tracer is not None:
        tracer.add("incidence.cold_builds", 1)
    return incidence, None


def build_reference(
    system: MultiFpgaSystem,
    netlist: Netlist,
    solution: RoutingSolution,
    delay_model: DelayModel,
) -> TdmIncidence:
    """The original pure-Python incidence construction, kept as an oracle.

    Builds a fully functional :class:`TdmIncidence` (including the CSR
    grouping, derived from the historical dict-of-lists) with per-hop
    Python loops.  The equivalence property tests assert the vectorized
    constructor matches this bit-for-bit; the phase II benchmark uses it
    as the reference pipeline's construction stage.
    """
    inc = TdmIncidence.__new__(TdmIncidence)
    inc.system = system
    inc.netlist = netlist
    inc.delay_model = delay_model
    inc.num_connections = netlist.num_connections
    inc._init_edge_columns()

    uses: List[NetEdgeUse] = solution.all_net_uses()
    use_index: Dict[NetEdgeUse, int] = {use: i for i, use in enumerate(uses)}
    inc._uses = uses
    inc._use_index = use_index
    inc.num_pairs = len(uses)

    num_pairs = inc.num_pairs
    inc.pair_net = np.fromiter(
        (u[0] for u in uses), dtype=np.int64, count=num_pairs
    )
    inc.pair_edge = np.fromiter(
        (u[1] for u in uses), dtype=np.int64, count=num_pairs
    )
    inc.pair_dir = np.fromiter(
        (u[2] for u in uses), dtype=np.int64, count=num_pairs
    )
    capacities = [edge.capacity for edge in system.edges]
    inc.pair_cap = np.fromiter(
        (capacities[u[1]] for u in uses), dtype=np.int64, count=num_pairs
    )

    inc_conn: List[int] = []
    inc_pair: List[int] = []
    conn_sll = np.zeros(inc.num_connections, dtype=np.float64)
    conn_tdm = np.zeros(inc.num_connections, dtype=np.int64)
    conn_net = np.zeros(inc.num_connections, dtype=np.int64)
    is_tdm = [edge.kind is EdgeKind.TDM for edge in system.edges]
    d_sll = delay_model.d_sll
    for conn in netlist.connections:
        index = conn.index
        net_index = conn.net_index
        conn_net[index] = net_index
        sll_sum = 0.0
        tdm_hops = 0
        for edge_index, direction in solution.path_hops(index):
            if is_tdm[edge_index]:
                inc_conn.append(index)
                inc_pair.append(use_index[(net_index, edge_index, direction)])
                tdm_hops += 1
            else:
                sll_sum += d_sll
        conn_sll[index] = sll_sum
        conn_tdm[index] = tdm_hops
    inc.inc_conn = np.asarray(inc_conn, dtype=np.int64)
    inc.inc_pair = np.asarray(inc_pair, dtype=np.int64)
    inc.conn_sll_delay = conn_sll
    inc.conn_tdm_hops = conn_tdm
    inc.conn_net = conn_net

    # Historical dict-of-lists grouping, converted to the CSR layout.
    edge_dir_pairs: Dict[Tuple[int, int], List[int]] = {}
    for i, (net, edge_index, direction) in enumerate(uses):
        edge_dir_pairs.setdefault((edge_index, direction), []).append(i)
    group_keys = sorted(edge_dir_pairs.keys())
    inc.dir_edge = np.fromiter(
        (key[0] for key in group_keys), dtype=np.int64, count=len(group_keys)
    )
    inc.dir_dir = np.fromiter(
        (key[1] for key in group_keys), dtype=np.int64, count=len(group_keys)
    )
    flat: List[int] = []
    indptr = [0]
    for key in group_keys:
        flat.extend(edge_dir_pairs[key])
        indptr.append(len(flat))
    inc.dir_pairs = np.asarray(flat, dtype=np.int64)
    inc.dir_indptr = np.asarray(indptr, dtype=np.int64)
    inc._dir_group_index = {key: g for g, key in enumerate(group_keys)}

    # Sorted key tables for incremental remaps (as in _assemble).
    num_edges = inc._edge_capacity.shape[0]
    pair_keys = (inc.pair_net * num_edges + inc.pair_edge) * 2 + inc.pair_dir
    key_order = np.argsort(pair_keys, kind="stable")
    inc._sorted_keys = pair_keys[key_order]
    inc._key_rank = key_order.astype(np.int64, copy=False)
    return inc
