"""Timing-driven topology refinement between phase II rounds.

After TDM ratios and wires exist, the actual critical connections are
known exactly.  The refiner rips up only those connections and offers each
a new path priced with the *measured* state of the solution: SLL hops cost
``d_SLL`` (and are forbidden where they would overflow), TDM hops cost
``d0 + d1 * r̄`` with ``r̄`` the demand-weighted mean wire ratio of the
directed edge.  A move is accepted only when its priced delay strictly
beats both the connection's measured delay and the price of its old path.

The caller (:class:`repro.core.router.SynergisticRouter`) re-runs phase II
on the refined topology and keeps the result only if the critical delay
actually improved — so the loop is monotone by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.arch.system import MultiFpgaSystem
from repro.core.config import RouterConfig
from repro.core.pathfinder import NegotiationState
from repro.netlist.netlist import Netlist
from repro.route.dijkstra import dijkstra_path
from repro.route.graph import RoutingGraph
from repro.route.solution import RoutingSolution
from repro.timing.analysis import TimingAnalyzer, TimingReport
from repro.timing.delay import DelayModel

#: Upper bound on connections re-routed per round; the critical set is
#: normally tiny, this only guards degenerate plateaus.
MAX_TARGETS_PER_ROUND = 512


@dataclass
class RefineOutcome:
    """Result of one refinement round.

    Attributes:
        solution: the refined topology (paths only; ratios must be
            re-assigned), or ``None`` when no connection could move.
        moves: number of accepted reroutes.
        changed_connections: indices of the connections whose path
            actually changed — the exact set phase II needs to patch the
            TDM incidence incrementally.
    """

    solution: Optional[RoutingSolution]
    moves: int = 0
    changed_connections: List[int] = field(default_factory=list)


class TimingDrivenRefiner:
    """Reroutes measured-critical connections on a ratio-aware cost."""

    def __init__(
        self,
        system: MultiFpgaSystem,
        netlist: Netlist,
        delay_model: DelayModel,
        config: Optional[RouterConfig] = None,
    ) -> None:
        self.system = system
        self.netlist = netlist
        self.delay_model = delay_model
        self.config = config if config is not None else RouterConfig()
        self._graph = RoutingGraph(system)
        self._analyzer = TimingAnalyzer(system, netlist, delay_model)

    def refine(
        self,
        solution: RoutingSolution,
        report: Optional["TimingReport"] = None,
    ) -> RefineOutcome:
        """One refinement round over the solution's critical connections.

        Args:
            solution: the routed, ratio-assigned solution to refine.
            report: an up-to-date timing analysis of ``solution``, when
                the caller already holds one; analyzed here otherwise.
        """
        if report is None:
            report = self._analyzer.analyze(solution)
        if report.critical_connection < 0:
            return RefineOutcome(solution=None)
        critical = report.critical_delay
        targets = [
            index
            for index, delay in enumerate(report.delays)
            if delay >= critical - 1e-9
        ][:MAX_TARGETS_PER_ROUND]

        ratio_means = self._mean_wire_ratios(solution)
        refined = solution.copy_topology()
        state = self._rebuild_state(refined)
        changed: List[int] = []
        for conn_index in targets:
            if self._reroute(
                refined, state, ratio_means, conn_index, report.delays[conn_index]
            ):
                changed.append(conn_index)
        if not changed:
            return RefineOutcome(solution=None)
        return RefineOutcome(
            solution=refined, moves=len(changed), changed_connections=changed
        )

    # ------------------------------------------------------------------
    def _mean_wire_ratios(self, solution: RoutingSolution) -> Dict[Tuple[int, int], float]:
        """Demand-weighted mean wire ratio per directed TDM edge."""
        means: Dict[Tuple[int, int], float] = {}
        for edge_index, wires in solution.wires.items():
            for direction in (0, 1):
                total = 0
                weighted = 0.0
                for wire in wires:
                    if wire.direction == direction and wire.demand:
                        total += wire.demand
                        weighted += wire.ratio * wire.demand
                if total:
                    means[(edge_index, direction)] = weighted / total
        return means

    def _rebuild_state(self, solution: RoutingSolution) -> NegotiationState:
        state = NegotiationState(self._graph)
        for conn in self.netlist.connections:
            if solution.path(conn.index) is not None:
                state.add_hops(conn.net_index, solution.path_hops(conn.index))
        return state

    def _reroute(
        self,
        solution: RoutingSolution,
        state: NegotiationState,
        ratio_means: Dict[Tuple[int, int], float],
        conn_index: int,
        measured_delay: float,
    ) -> bool:
        conn = self.netlist.connections[conn_index]
        model = self.delay_model
        graph = self._graph
        old_path = list(solution.path(conn_index))
        state.remove_path(conn.net_index, old_path)
        net_edges = state.net_edges(conn.net_index)
        demand = state.demand
        infinity = float("inf")
        min_ratio = float(model.tdm_step)

        def edge_cost(edge_index: int, frm: int, to: int) -> float:
            if graph.is_tdm[edge_index]:
                direction = 0 if frm < to else 1
                ratio = ratio_means.get((edge_index, direction), min_ratio)
                return model.tdm_delay(ratio)
            if (
                edge_index not in net_edges
                and demand[edge_index] + 1 > graph.capacity[edge_index]
            ):
                return infinity
            return model.d_sll

        def path_price(path: List[int]) -> float:
            total = 0.0
            for frm, to in zip(path, path[1:]):
                edge = self.system.edge_between(frm, to)
                total += edge_cost(edge.index, frm, to)
            return total

        new_path = dijkstra_path(
            graph.adjacency, conn.source_die, conn.sink_die, edge_cost
        )
        accept = False
        if new_path is not None and new_path != old_path:
            new_price = path_price(new_path)
            bar = min(measured_delay, path_price(old_path))
            if new_price < bar - 1e-9 and new_price < infinity:
                accept = True
        if accept:
            state.add_path(conn.net_index, new_path)
            solution.set_path(conn_index, new_path)
            return True
        state.add_path(conn.net_index, old_path)
        return False
