"""Table III: delay / #CONF / runtime across routers and contest cases.

One benchmark per (router, case) pair; a final collector test renders the
paper-style table with per-router normalized delay and runtime (geometric
means over the cases where every router produced a legal result), plus
FAIL markers where a router leaves SLL overlaps.
"""

from __future__ import annotations

import math
import os
import time
from typing import Dict, Tuple

import pytest

from benchmarks.conftest import (
    bench_case,
    record_bench_result,
    register_report,
    selected_cases,
)
from repro import SynergisticRouter
from repro.baselines import all_baseline_routers

RESULTS: Dict[Tuple[str, str], Tuple[float, int, float]] = {}


def selected_routers():
    raw = os.environ.get("REPRO_BENCH_ROUTERS", "")
    registry = {"ours": SynergisticRouter}
    registry.update(all_baseline_routers())
    if raw.strip():
        picked = [name.strip() for name in raw.split(",") if name.strip()]
        return {name: registry[name] for name in picked}
    return registry


ROUTERS = selected_routers()
CASES = selected_cases()


@pytest.mark.parametrize("router_name", list(ROUTERS))
@pytest.mark.parametrize("case_name", CASES)
def test_route(benchmark, router_name, case_name):
    case = bench_case(case_name)
    cls = ROUTERS[router_name]

    def run():
        return cls(case.system, case.netlist).route()

    start = time.perf_counter()
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    elapsed = time.perf_counter() - start
    RESULTS[(router_name, case_name)] = (
        result.critical_delay,
        result.conflict_count,
        elapsed,
    )
    lr_history = getattr(result, "lr_history", None)
    initial_stats = getattr(result, "initial_stats", None)
    record_bench_result(
        "table3",
        case_name,
        router=router_name,
        wall_time_s=elapsed,
        critical_delay=result.critical_delay,
        conflicts=result.conflict_count,
        lr_iterations=lr_history.num_iterations if lr_history else 0,
        negotiation_rounds=(
            initial_stats.negotiation_rounds if initial_stats else None
        ),
        timing_reroute_moves=getattr(result, "timing_reroute_moves", 0),
    )
    assert result.solution.is_complete


def test_zz_render_table3(benchmark):
    """Render the collected Table III (runs last by name)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if not RESULTS:
        pytest.skip("no routing results collected")
    lines = []
    header = f"{'Router':20s} {'Metric':8s}" + "".join(
        f"{name[-2:]:>10s}" for name in CASES
    ) + f"{'Norm.':>8s}"
    lines.append(header)

    # Normalization baseline: our router's legal results.
    ours = {c: RESULTS.get(("ours", c)) for c in CASES}
    for router_name in ROUTERS:
        rows = {c: RESULTS.get((router_name, c)) for c in CASES}
        delay_cells, conf_cells, time_cells = [], [], []
        delay_ratios, time_ratios = [], []
        for c in CASES:
            entry = rows[c]
            if entry is None:
                for cells in (delay_cells, conf_cells, time_cells):
                    cells.append(f"{'-':>10s}")
                continue
            delay, conf, elapsed = entry
            delay_cells.append(
                f"{'FAIL':>10s}" if conf else f"{delay:10.1f}"
            )
            conf_cells.append(f"{conf:10d}")
            time_cells.append(f"{elapsed:10.2f}")
            base = ours.get(c)
            if base and base[1] == 0 and conf == 0 and base[0] > 0:
                delay_ratios.append(delay / base[0])
                if base[2] > 0 and elapsed > 0:
                    time_ratios.append(elapsed / base[2])
        norm_delay = (
            math.exp(sum(math.log(r) for r in delay_ratios) / len(delay_ratios))
            if delay_ratios
            else float("nan")
        )
        norm_time = (
            math.exp(sum(math.log(r) for r in time_ratios) / len(time_ratios))
            if time_ratios
            else float("nan")
        )
        lines.append(
            f"{router_name:20s} {'Delay':8s}" + "".join(delay_cells) + f"{norm_delay:8.3f}"
        )
        lines.append(f"{'':20s} {'#CONF':8s}" + "".join(conf_cells))
        lines.append(
            f"{'':20s} {'Time(s)':8s}" + "".join(time_cells) + f"{norm_time:8.3f}"
        )
    lines.append("")
    lines.append(
        "Norm. = geometric mean relative to 'ours' over mutually legal cases "
        "(paper: ours 1.000; winners 1.098/1.238/1.171; [18] 1.076)."
    )
    register_report("Table III: router comparison", lines)
