"""Throughput of the batched first pass vs the exact per-connection pass.

The repro band notes pure-Python per-connection routing is the bottleneck
on the large contest instances; ``RouterConfig.initial_batch_size``
amortizes one frozen-cost Dijkstra per source die over a whole wave of
connections.  This benchmark isolates the first pass (no negotiation) and
reports the speedup and the initial-overflow cost the negotiation rounds
then have to clean up.
"""

from __future__ import annotations

import time

from benchmarks.conftest import register_report
from repro import DelayModel, RouterConfig
from repro.benchgen import load_case
from repro.core.initial_routing import InitialRouter


def test_batched_vs_exact_first_pass(benchmark):
    case = load_case("case09", scale=0.25)
    rows = []

    def run():
        for batch in (None, 4096):
            config = RouterConfig(
                initial_batch_size=batch, max_reroute_iterations=0
            )
            router = InitialRouter(case.system, case.netlist, DelayModel(), config)
            start = time.perf_counter()
            router.route()
            elapsed = time.perf_counter() - start
            rows.append((batch, elapsed, router.stats.final_overflow))
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    exact_time = rows[0][1]
    lines = [
        f"case09 at scale 0.25 ({case.netlist.num_connections} connections), "
        "first pass only:",
        f"{'mode':16s} {'time(s)':>9s} {'speedup':>9s} {'initial overflow':>17s}",
    ]
    for batch, elapsed, overflow in rows:
        mode = "exact" if batch is None else f"batched({batch})"
        speedup = exact_time / elapsed if elapsed else float("inf")
        lines.append(f"{mode:16s} {elapsed:9.2f} {speedup:8.1f}x {overflow:17d}")
    register_report("Batched first pass vs exact", lines)
    assert rows[1][1] <= rows[0][1]  # batched must not be slower
