"""Robustness of the conclusion across qualitatively different workloads.

The contest traffic profile is unknown (DESIGN.md substitution 1); this
benchmark regenerates a mid-size case under three qualitatively different
sink distributions — emulation-style (cross-FPGA heavy), uniform, and
hotspot (two hub dies) — and checks ours vs the winner1 proxy on each.
"""

from __future__ import annotations

import dataclasses

from benchmarks.conftest import register_report
from repro import SynergisticRouter
from repro.baselines import ContestWinner1Router
from repro.benchgen import CONTEST_CASES, DEFAULT_SCALES, generate_case

PROFILES = ("emulation", "uniform", "hotspot")


def test_traffic_profile_robustness(benchmark):
    spec = CONTEST_CASES["case07"]
    scale = DEFAULT_SCALES["case07"]

    def run():
        rows = []
        for profile in PROFILES:
            case = generate_case(
                dataclasses.replace(spec, traffic_profile=profile), scale
            )
            ours = SynergisticRouter(case.system, case.netlist).route()
            theirs = ContestWinner1Router(case.system, case.netlist).route()
            rows.append((profile, ours, theirs))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "case07 regenerated under three traffic profiles:",
        f"{'profile':12s} {'ours':>9s} {'winner1':>9s}",
    ]
    for profile, ours, theirs in rows:
        lines.append(
            f"{profile:12s} {ours.critical_delay:9.1f} {theirs.critical_delay:9.1f}"
        )
        if ours.conflict_count == 0 and theirs.conflict_count == 0:
            assert ours.critical_delay <= theirs.critical_delay + 1e-9, profile
    register_report("Traffic-profile robustness", lines)
