"""Serving-layer benchmark: throughput, latency and warm-cache payoff.

Replays the deterministic load generator (docs/serving.md) through a
:class:`repro.serve.RoutingService` and records req/s, p50/p99 latency
(from the service's obs quantile sketches), warm-artifact cache hit
rates and the fingerprint-vs-sequential verdict.  The repeated-topology
scenario is the serving layer's headline claim: the warm cache must
serve > 80% of lookups while every concurrent response stays
bit-identical to its sequential cold run.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import record_bench_result, register_report
from repro.obs import Tracer
from repro.serve import LoadSpec, run_load

#: (label, spec, hit-rate floor) — the floor is asserted, not just logged.
SCENARIOS = [
    (
        "repeated_topology",
        LoadSpec(
            cases=("case02", "case05"),
            requests=16,
            concurrency=4,
            seed=2025,
            cache_entries=8,
        ),
        0.8,
    ),
    (
        "priority_mix",
        LoadSpec(
            cases=("case02", "case05"),
            requests=10,
            concurrency=2,
            seed=7,
            priorities=(0, 5),
            cache_entries=8,
        ),
        0.5,
    ),
]

IDS = [label for label, _, _ in SCENARIOS]


@pytest.mark.parametrize("label,spec,hit_floor", SCENARIOS, ids=IDS)
def test_serve_load(benchmark, label, spec, hit_floor):
    tracer = Tracer()

    report = benchmark.pedantic(
        lambda: run_load(spec, tracer=tracer), rounds=1, iterations=1
    )

    # The service contract, enforced here so a regression fails the
    # bench rather than shipping a misleading number.
    assert report.failed == 0, "no request may fail under the service"
    assert not report.fingerprint_mismatches, (
        "concurrent responses must be bit-identical to sequential runs: "
        f"{report.fingerprint_mismatches}"
    )
    assert report.fingerprint_matches == report.ok
    assert report.cache_hit_rate > hit_floor, (
        f"warm-artifact hit rate {report.cache_hit_rate:.0%} below the "
        f"{hit_floor:.0%} floor on a repeated-topology workload"
    )

    record_bench_result(
        "serve",
        ",".join(spec.cases),
        scenario=label,
        requests=report.total,
        concurrency=spec.concurrency,
        requests_per_second=round(report.requests_per_second, 3),
        latency_p50_seconds=round(report.latency_p50, 4),
        latency_p99_seconds=round(report.latency_p99, 4),
        queue_p50_seconds=round(report.queue_p50, 4),
        cache_hits=report.cache_hits,
        cache_misses=report.cache_misses,
        cache_hit_rate=round(report.cache_hit_rate, 4),
        ok=report.ok,
        degraded=report.degraded,
        failed=report.failed,
        preemptions=report.preemptions,
        fingerprints_verified=report.fingerprint_matches,
    )
    register_report(
        "Serving: concurrent scheduler with shared warm caches",
        [
            f"{label}: {report.requests_per_second:.2f} req/s | "
            f"p50 {report.latency_p50:.3f}s p99 {report.latency_p99:.3f}s | "
            f"cache {report.cache_hit_rate:.0%} "
            f"({report.cache_hits}h/{report.cache_misses}m) | "
            f"preempt {report.preemptions} | "
            f"{report.fingerprint_matches}/{report.ok} fingerprints verified"
        ],
    )
