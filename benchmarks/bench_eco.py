"""Incremental (ECO) rerouting vs a full re-route.

Measures the practical payoff of :class:`repro.core.eco.EcoRouter`:
after touching 1% of the nets, the incremental path should cost a
fraction of a from-scratch route while staying legal and close in
quality.
"""

from __future__ import annotations

import time

from benchmarks.conftest import bench_case, register_report, selected_cases
from repro import SynergisticRouter
from repro.core.eco import EcoRouter


def test_eco_vs_full_reroute(benchmark):
    name = "case07" if "case07" in selected_cases() else selected_cases()[-1]
    case = bench_case(name)

    base = SynergisticRouter(case.system, case.netlist).route()
    crossing = [net.index for net in case.netlist.crossing_nets()]
    budget = max(1, len(crossing) // 100)  # ~1% of the crossing nets
    stride = max(1, len(crossing) // budget)
    changed = crossing[::stride][:budget]

    def run_eco():
        return EcoRouter(case.system).reroute_nets(base.solution, changed)

    start = time.perf_counter()
    eco = benchmark.pedantic(run_eco, rounds=1, iterations=1)
    eco_time = time.perf_counter() - start

    start = time.perf_counter()
    full = SynergisticRouter(case.system, case.netlist).route()
    full_time = time.perf_counter() - start

    register_report(
        "ECO incremental rerouting vs full re-route",
        [
            f"case: {name}  changed nets: {len(changed)} "
            f"({len(changed) / case.netlist.num_nets:.1%})",
            f"{'flow':18s} {'time(s)':>9s} {'delay':>8s} {'conf':>6s} "
            f"{'rerouted conns':>15s}",
            f"{'ECO':18s} {eco_time:9.2f} {eco.critical_delay:8.1f} "
            f"{eco.conflict_count:6d} {eco.rerouted_connections:15d}",
            f"{'full re-route':18s} {full_time:9.2f} {full.critical_delay:8.1f} "
            f"{full.conflict_count:6d} {case.netlist.num_connections:15d}",
        ],
    )
    assert eco.conflict_count == 0
    assert eco.rerouted_connections < case.netlist.num_connections