"""Fig. 5(b): runtime breakdown of our router on the largest case.

The paper reports, on Case #10: initial routing (IR) 70.39%, initial TDM
ratio assignment (TA) 19.50%, legalization + wire assignment (LG & WA)
10.12%.  The exact split depends on language and machine; the shape to
reproduce is IR >> TA > LG & WA.
"""

from __future__ import annotations

from benchmarks.conftest import (
    bench_case,
    record_bench_result,
    register_report,
    selected_cases,
)
from repro import SynergisticRouter


def test_fig5b_runtime_breakdown(benchmark):
    name = "case10" if "case10" in selected_cases() else selected_cases()[-1]
    case = bench_case(name)

    def run():
        return SynergisticRouter(case.system, case.netlist).route()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    fractions = result.phase_times.fractions()
    times = result.phase_times
    record_bench_result(
        "fig5b",
        name,
        wall_time_s=times.total,
        critical_delay=result.critical_delay,
        conflicts=result.conflict_count,
        ir_seconds=times.initial_routing,
        ta_seconds=times.tdm_assignment,
        lgwa_seconds=times.legalization_wire_assignment,
        lr_iterations=result.lr_history.num_iterations if result.lr_history else 0,
        negotiation_rounds=(
            result.initial_stats.negotiation_rounds if result.initial_stats else 0
        ),
    )
    register_report(
        "Fig. 5(b): runtime breakdown",
        [
            f"case: {name}  total {times.total:.2f}s",
            f"{'phase':28s} {'seconds':>9s} {'share':>8s} {'paper':>8s}",
            f"{'initial routing (IR)':28s} {times.initial_routing:9.2f} "
            f"{fractions['IR']:8.1%} {'70.39%':>8s}",
            f"{'initial TDM ratios (TA)':28s} {times.tdm_assignment:9.2f} "
            f"{fractions['TA']:8.1%} {'19.50%':>8s}",
            f"{'legalize + wires (LG & WA)':28s} "
            f"{times.legalization_wire_assignment:9.2f} "
            f"{fractions['LG & WA']:8.1%} {'10.12%':>8s}",
        ],
    )
    # The shape of the paper's pie: IR dominates.
    assert fractions["IR"] > fractions["TA"]
    assert fractions["IR"] > fractions["LG & WA"]
