"""Phase II kernel speedup: vectorized pipeline vs pure-Python reference.

Runs the full phase II pipeline — incidence construction, Lagrangian
ratio assignment, legalization and wire assignment — on contest cases in
two configurations:

* **fast**: the vectorized :class:`~repro.core.incidence.TdmIncidence`
  constructor plus the buffered LR loop (the production path), and
* **reference**: :func:`~repro.core.incidence.build_reference` (the
  original per-hop Python construction) plus the unbuffered LR loop.

Both share the legalizer and wire assigner, and the results must be
bit-identical: same legalized ratios, same wire packing, same critical
delay.  A second benchmark times the incremental incidence rebuild
(:meth:`TdmIncidence.incremental`) against a cold rebuild after a small
set of connections changed — the timing-reroute/ECO refine-round case.

Rows land in ``BENCH_phase2.json`` (schema: benchmarks/conftest.py) so
the before/after trajectory can be diffed across commits.
"""

from __future__ import annotations

import os
import time
from typing import Tuple

import numpy as np
import pytest

from benchmarks.conftest import bench_case, record_bench_result, register_report
from repro import DelayModel, RouterConfig
from repro.core.incidence import TdmIncidence, build_reference
from repro.core.initial_routing import InitialRouter
from repro.core.lagrangian import LagrangianTdmAssigner
from repro.core.legalization import TdmLegalizer
from repro.core.wire_assignment import WireAssigner
from repro.parallel import ParallelExecutor
from repro.timing import TimingAnalyzer

#: Cases run by this benchmark (the contest trio the guards watch).
PHASE2_CASES = [
    name.strip()
    for name in os.environ.get(
        "REPRO_BENCH_PHASE2_CASES", "case05,case06,case07"
    ).split(",")
    if name.strip()
]

#: Timing repetitions; the best run is reported (rejects scheduler noise).
ROUNDS = int(os.environ.get("REPRO_BENCH_PHASE2_ROUNDS", "3"))

#: Phase II pipeline wall times at the pre-PR commit (dec8cc1), best of 7
#: runs alternated process-by-process with the optimized pipeline on the
#: reference machine — the fixed yardstick for the PR-level speedup (the
#: in-tree reference pipeline also got faster from the shared
#: legalizer/assigner work, so it understates the win).
PRE_PR_BASELINE_S = {"case05": 0.0279, "case06": 0.1447, "case07": 0.1024}

#: Connections rerouted before timing the incremental rebuild (well under
#: the router's default 20% gate).
INCREMENTAL_PATCH = 64


def run_pipeline(case, sol, executor, fast: bool) -> Tuple[object, object, object]:
    """One full phase II pass over ``sol``; returns ``(lr, legal, stats)``."""
    model = DelayModel()
    config = RouterConfig()
    if fast:
        inc = TdmIncidence(case.system, case.netlist, sol, model)
    else:
        inc = build_reference(case.system, case.netlist, sol, model)
    lr = LagrangianTdmAssigner(inc, config, buffered=fast).solve()
    legal = TdmLegalizer(inc, config, executor).legalize(lr.ratios)
    inc.write_ratios(sol, legal.ratios)
    stats = WireAssigner(inc, config, executor).assign(
        sol, legal.ratios, legal.wire_budgets, legal.criticality
    )
    return lr, legal, stats


@pytest.mark.parametrize("case_name", PHASE2_CASES)
def test_phase2_pipeline_speedup(benchmark, case_name):
    case = bench_case(case_name)
    solution = InitialRouter(case.system, case.netlist).route()
    best = {True: float("inf"), False: float("inf")}
    results = {}

    def run():
        # One persistent executor across every round, as in the router;
        # interleave the two configurations so machine noise hits both.
        # The timed window covers the pipeline stages only — the topology
        # copy each round feeds the pipeline but is not part of it.
        with ParallelExecutor(RouterConfig().num_workers) as executor:
            for _ in range(ROUNDS):
                for fast in (False, True):
                    sol = solution.copy_topology()
                    start = time.perf_counter()
                    outputs = run_pipeline(case, sol, executor, fast)
                    best[fast] = min(best[fast], time.perf_counter() - start)
                    results[fast] = (sol, outputs)
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)

    fast_sol, (fast_lr, fast_legal, fast_stats) = results[True]
    ref_sol, (ref_lr, ref_legal, _) = results[False]
    analyzer = TimingAnalyzer(case.system, case.netlist, DelayModel())
    critical = analyzer.critical_delay(fast_sol)
    speedup = best[False] / best[True] if best[True] else float("inf")
    pre_pr = PRE_PR_BASELINE_S.get(case_name)
    record_bench_result(
        "phase2",
        case_name,
        wall_time_fast_s=best[True],
        wall_time_reference_s=best[False],
        speedup=speedup,
        wall_time_pre_pr_s=pre_pr,
        speedup_vs_pre_pr=(pre_pr / best[True]) if pre_pr else None,
        critical_delay=critical,
        num_pairs=int(fast_legal.ratios.shape[0]),
        lr_iterations=fast_lr.history.num_iterations,
        refinement_steps=fast_legal.refinement_steps,
        wires_used=fast_stats.wires_used,
    )
    register_report(
        "Phase II kernel speedup",
        [
            f"{case_name}: fast {best[True]:.3f}s vs reference {best[False]:.3f}s "
            f"({speedup:.2f}x), delay {critical:.2f}, "
            f"{fast_legal.ratios.shape[0]} pairs, "
            f"{fast_lr.history.num_iterations} LR iters, "
            f"{fast_stats.wires_used} wires"
            + (f", {pre_pr / best[True]:.2f}x vs pre-PR" if pre_pr else ""),
        ],
    )

    # The vectorized pipeline must not change the answer.
    assert np.array_equal(fast_lr.ratios, ref_lr.ratios)
    assert np.array_equal(fast_legal.ratios, ref_legal.ratios)
    assert fast_legal.wire_budgets == ref_legal.wire_budgets
    assert analyzer.critical_delay(ref_sol) == critical
    for edge_index in sorted(ref_sol.wires):
        assert [
            (w.direction, w.ratio, sorted(w.net_indices))
            for w in fast_sol.wires[edge_index]
        ] == [
            (w.direction, w.ratio, sorted(w.net_indices))
            for w in ref_sol.wires[edge_index]
        ]


def test_incremental_rebuild_speedup(benchmark):
    case = bench_case(PHASE2_CASES[-1])
    model = DelayModel()
    solution = InitialRouter(case.system, case.netlist).route()
    previous = TdmIncidence(case.system, case.netlist, solution, model)
    # Touch a small connection set (re-setting a path marks it changed the
    # same way a timing reroute does).
    changed = list(range(0, case.netlist.num_connections))[:INCREMENTAL_PATCH]
    patched = solution.copy_topology()
    for conn_index in changed:
        patched.set_path(conn_index, list(patched.path(conn_index)))
    best = {"cold": float("inf"), "incremental": float("inf")}
    holder = {}

    def run():
        for _ in range(ROUNDS):
            start = time.perf_counter()
            cold = TdmIncidence(case.system, case.netlist, patched, model)
            best["cold"] = min(best["cold"], time.perf_counter() - start)
            start = time.perf_counter()
            delta = TdmIncidence.incremental(previous, patched, changed)
            best["incremental"] = min(
                best["incremental"], time.perf_counter() - start
            )
            holder["cold"], holder["delta"] = cold, delta
        return holder

    benchmark.pedantic(run, rounds=1, iterations=1)

    cold, delta = holder["cold"], holder["delta"]
    speedup = (
        best["cold"] / best["incremental"]
        if best["incremental"]
        else float("inf")
    )
    record_bench_result(
        "phase2",
        PHASE2_CASES[-1],
        wall_time_cold_build_s=best["cold"],
        wall_time_incremental_s=best["incremental"],
        incremental_speedup=speedup,
        patched_connections=len(changed),
    )
    register_report(
        "Incremental incidence rebuild",
        [
            f"{PHASE2_CASES[-1]}: incremental {best['incremental'] * 1e3:.2f}ms "
            f"vs cold {best['cold'] * 1e3:.2f}ms ({speedup:.2f}x) "
            f"patching {len(changed)} connections",
        ],
    )

    # The patched incidence must equal the cold rebuild bit-for-bit.
    inc = delta.incidence
    assert inc.num_pairs == cold.num_pairs
    for name in ("inc_conn", "inc_pair", "conn_sll_delay", "dir_pairs"):
        assert np.array_equal(getattr(inc, name), getattr(cold, name)), name
