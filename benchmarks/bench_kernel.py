"""Phase I kernel speedup: array-driven search vs closure-based search.

Routes contest cases end-to-end with ``RouterConfig.use_kernel`` on and
off and reports the wall-time speedup alongside the quality columns
(critical delay, #CONF) — which must be identical, since the kernel in
exact mode is a bit-for-bit reimplementation of the closure search.  The
kernel's cache counters (``kernel.*``) are pulled from the run telemetry
so the report shows *why* the speedup happens.

Rows land in ``BENCH_kernel.json`` (schema: benchmarks/conftest.py) so
the before/after trajectory can be diffed across commits.
"""

from __future__ import annotations

import os
import time

import pytest

from benchmarks.conftest import (
    bench_case,
    record_bench_result,
    register_report,
)
from repro import RouterConfig, SynergisticRouter

#: Cases routed by this benchmark (the perf-guard pair by default).
KERNEL_CASES = [
    name.strip()
    for name in os.environ.get("REPRO_BENCH_KERNEL_CASES", "case05,case07").split(",")
    if name.strip()
]

#: Timing repetitions; the best run is reported (rejects scheduler noise).
ROUNDS = int(os.environ.get("REPRO_BENCH_KERNEL_ROUNDS", "3"))

#: End-to-end wall times at the pre-kernel commit (f453f79), best of 7
#: interleaved runs on the reference machine — the fixed yardstick for
#: the PR-level speedup (the in-tree ``use_kernel=False`` path also got
#: faster from the shared data-layout work, so it understates the win).
PRE_PR_BASELINE_S = {"case05": 0.187, "case07": 0.644}


def route_once(case, use_kernel: bool):
    config = RouterConfig(use_kernel=use_kernel)
    router = SynergisticRouter(case.system, case.netlist, config=config)
    start = time.perf_counter()
    result = router.route()
    elapsed = time.perf_counter() - start
    return elapsed, result


@pytest.mark.parametrize("case_name", KERNEL_CASES)
def test_kernel_speedup(benchmark, case_name):
    case = bench_case(case_name)
    best = {True: float("inf"), False: float("inf")}
    results = {}

    def run():
        # Interleave the two configurations so machine noise hits both.
        for _ in range(ROUNDS):
            for use_kernel in (False, True):
                elapsed, result = route_once(case, use_kernel)
                best[use_kernel] = min(best[use_kernel], elapsed)
                results[use_kernel] = result
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)

    kernel_result = results[True]
    legacy_result = results[False]
    counters = kernel_result.telemetry.counters
    speedup = best[False] / best[True] if best[True] else float("inf")
    pre_pr = PRE_PR_BASELINE_S.get(case_name)
    record_bench_result(
        "kernel",
        case_name,
        wall_time_kernel_s=best[True],
        wall_time_legacy_s=best[False],
        speedup=speedup,
        wall_time_pre_pr_s=pre_pr,
        speedup_vs_pre_pr=(pre_pr / best[True]) if pre_pr else None,
        critical_delay=kernel_result.critical_delay,
        critical_delay_legacy=legacy_result.critical_delay,
        conflicts=kernel_result.conflict_count,
        tree_hits=counters.get("kernel.tree_hits", 0),
        tree_misses=counters.get("kernel.tree_misses", 0),
        epoch_bumps=counters.get("kernel.epoch_bumps", 0),
        overlay_searches=counters.get("kernel.overlay_searches", 0),
    )
    register_report(
        "Phase I kernel speedup",
        [
            f"{case_name}: kernel {best[True]:.3f}s vs legacy {best[False]:.3f}s "
            f"({speedup:.2f}x), delay {kernel_result.critical_delay:.2f}, "
            f"conf {kernel_result.conflict_count}, "
            f"tree {counters.get('kernel.tree_hits', 0)}h/"
            f"{counters.get('kernel.tree_misses', 0)}m, "
            f"epochs {counters.get('kernel.epoch_bumps', 0)}, "
            f"overlays {counters.get('kernel.overlay_searches', 0)}"
            + (f", {pre_pr / best[True]:.2f}x vs pre-kernel" if pre_pr else ""),
        ],
    )

    # The exact-mode kernel must not change the answer.
    assert kernel_result.critical_delay == legacy_result.critical_delay
    assert kernel_result.conflict_count == legacy_result.conflict_count
    assert kernel_result.solution.is_complete
