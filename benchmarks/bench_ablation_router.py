"""Ablations of the design choices DESIGN.md calls out.

* µ sharing factor (Section III-B): 0.5 (paper) vs 1.0 (disabled).
* Weight mode (Section III-B): auto vs forced delay / congestion.
* Timing-driven outer loop: on (default) vs off.
* LR initial ratio assignment: full phase II vs even per-edge packing
  (what the criticality baseline does) on our own topology.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_case, register_report, selected_cases
from repro import DelayModel, RouterConfig, SynergisticRouter
from repro.baselines import CriticalityTdmAssigner
from repro.core.initial_routing import InitialRouter
from repro.timing import TimingAnalyzer

_DEFAULT = [
    c for c in selected_cases() if c in ("case03", "case06", "case07", "case09")
]
CASES = _DEFAULT or selected_cases()[:1]


@pytest.mark.parametrize("case_name", CASES)
def test_ablation_mu(benchmark, case_name):
    case = bench_case(case_name)

    def run():
        shared = SynergisticRouter(
            case.system, case.netlist, config=RouterConfig(mu_shared=0.5)
        ).route()
        disabled = SynergisticRouter(
            case.system, case.netlist, config=RouterConfig(mu_shared=1.0)
        ).route()
        return shared, disabled

    shared, disabled = benchmark.pedantic(run, rounds=1, iterations=1)
    register_report(
        "Ablation: µ sharing factor",
        [
            f"{case_name}: mu=0.5 delay={shared.critical_delay:.1f} "
            f"conf={shared.conflict_count} | mu=1.0 "
            f"delay={disabled.critical_delay:.1f} conf={disabled.conflict_count}"
        ],
    )


@pytest.mark.parametrize("case_name", CASES)
def test_ablation_weight_mode(benchmark, case_name):
    case = bench_case(case_name)

    def run():
        out = {}
        for mode in ("auto", "delay", "congestion"):
            out[mode] = SynergisticRouter(
                case.system, case.netlist, config=RouterConfig(weight_mode=mode)
            ).route()
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    cells = " | ".join(
        f"{mode}: delay={r.critical_delay:.1f} conf={r.conflict_count}"
        for mode, r in results.items()
    )
    register_report("Ablation: weight mode", [f"{case_name}: {cells}"])
    # Auto should never be worse than the best forced mode by much more
    # than the legalization step granularity on legal results.
    legal = {m: r for m, r in results.items() if r.conflict_count == 0}
    if "auto" in legal and len(legal) > 1:
        best = min(r.critical_delay for r in legal.values())
        assert legal["auto"].critical_delay <= best * 1.6 + 1e-9


@pytest.mark.parametrize("case_name", CASES)
def test_ablation_timing_reroute(benchmark, case_name):
    case = bench_case(case_name)

    def run():
        on = SynergisticRouter(
            case.system, case.netlist, config=RouterConfig(timing_reroute_rounds=3)
        ).route()
        off = SynergisticRouter(
            case.system, case.netlist, config=RouterConfig(timing_reroute_rounds=0)
        ).route()
        return on, off

    on, off = benchmark.pedantic(run, rounds=1, iterations=1)
    register_report(
        "Ablation: timing-driven outer loop",
        [
            f"{case_name}: on delay={on.critical_delay:.1f} "
            f"(moves={on.timing_reroute_moves}) | off delay={off.critical_delay:.1f}"
        ],
    )
    assert on.critical_delay <= off.critical_delay + 1e-9


@pytest.mark.parametrize("case_name", CASES)
def test_ablation_first_pass_modes(benchmark, case_name):
    """Exact vs batched vs Steiner-fanout first passes."""
    case = bench_case(case_name)

    def run():
        out = {}
        for label, kwargs in (
            ("exact", {}),
            ("batched", {"initial_batch_size": 2048}),
            ("steiner>=4", {"steiner_fanout_threshold": 4}),
        ):
            out[label] = SynergisticRouter(
                case.system, case.netlist, config=RouterConfig(**kwargs)
            ).route()
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    cells = " | ".join(
        f"{label}: delay={r.critical_delay:.1f} conf={r.conflict_count} "
        f"IR={r.phase_times.initial_routing:.2f}s"
        for label, r in results.items()
    )
    register_report("Ablation: first-pass modes", [f"{case_name}: {cells}"])
    for result in results.values():
        assert result.solution.is_complete


@pytest.mark.parametrize("case_name", CASES)
def test_ablation_lr_vs_even_packing(benchmark, case_name):
    """Phase II value: LR pipeline vs even per-edge packing, same topology."""
    case = bench_case(case_name)
    model = DelayModel()
    analyzer = TimingAnalyzer(case.system, case.netlist, model)

    def run():
        topology = InitialRouter(case.system, case.netlist, model).route()
        even = topology.copy_topology()
        CriticalityTdmAssigner(case.system, case.netlist, model, refine=False).assign(even)
        full = SynergisticRouter(case.system, case.netlist, model).route()
        return analyzer.critical_delay(even), full.critical_delay

    even_delay, full_delay = benchmark.pedantic(run, rounds=1, iterations=1)
    register_report(
        "Ablation: LR phase II vs even per-edge packing",
        [f"{case_name}: even packing={even_delay:.1f} | full phase II={full_delay:.1f}"],
    )
