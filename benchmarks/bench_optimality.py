"""Optimality rate vs the exact reference solver on tiny instances.

For a battery of random small cases the exact optimum is computable by
enumeration (`repro.analysis.ExactSolver`); this benchmark reports how
often the heuristic router attains it and the mean gap when it does not —
the strongest quality evidence a heuristic can offer.
"""

from __future__ import annotations

import random

from benchmarks.conftest import register_report
from repro import Net, Netlist, SynergisticRouter, SystemBuilder
from repro.analysis import ExactSolver, InstanceTooLarge

NUM_INSTANCES = 60


def _random_instance(seed: int):
    rng = random.Random(seed)
    builder = SystemBuilder()
    a = builder.add_fpga(num_dies=2, sll_capacity=rng.choice([4, 10, 50]))
    b = builder.add_fpga(num_dies=2, sll_capacity=rng.choice([4, 10, 50]))
    builder.add_tdm_edge(a.die(1), b.die(0), rng.choice([2, 3, 4, 8]))
    system = builder.build()
    nets = []
    for i in range(rng.randint(1, 8)):
        source = rng.randrange(4)
        sink = rng.randrange(4)
        if sink == source:
            sink = (sink + 1) % 4
        nets.append(Net(f"n{i}", source, (sink,)))
    return system, Netlist(nets)


def test_optimality_rate(benchmark):
    def run():
        matched = 0
        gaps = []
        evaluated = 0
        for seed in range(NUM_INSTANCES):
            system, netlist = _random_instance(seed)
            try:
                exact = ExactSolver(system, netlist).solve()
            except InstanceTooLarge:
                continue
            if exact.optimal_delay == float("inf"):
                continue  # structurally infeasible in the restricted space
            result = SynergisticRouter(system, netlist).route()
            if result.conflict_count:
                continue
            evaluated += 1
            gap = result.critical_delay - exact.optimal_delay
            assert gap >= -1e-9  # a heuristic can never beat the optimum
            if gap <= 1e-9:
                matched += 1
            else:
                gaps.append(gap / exact.optimal_delay)
        return evaluated, matched, gaps

    evaluated, matched, gaps = benchmark.pedantic(run, rounds=1, iterations=1)
    mean_gap = sum(gaps) / len(gaps) if gaps else 0.0
    register_report(
        "Optimality vs exact solver (tiny instances)",
        [
            f"instances evaluated : {evaluated}",
            f"optimum attained    : {matched} ({matched / max(1, evaluated):.0%})",
            f"mean gap when missed: {mean_gap:.1%}",
        ],
    )
    assert evaluated >= 20
    assert matched / evaluated >= 0.9  # near-universal optimality expected
