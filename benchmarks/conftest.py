"""Shared benchmark plumbing.

Environment knobs:

* ``REPRO_BENCH_CASES`` — comma-separated case names to run (default: all
  ten at their per-case default scales).
* ``REPRO_BENCH_SCALE`` — scale override applied to *every* case (e.g.
  ``1.0`` to attempt the full Table II sizes; expect long runtimes).
* ``REPRO_BENCH_ROUTERS`` — comma-separated router subset for Table III.

Each benchmark registers a human-readable result table that is printed in
the terminal summary, so ``pytest benchmarks/ --benchmark-only`` emits the
paper-style tables alongside the timing statistics.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

import pytest

from repro.benchgen import case_names, load_case

#: Report blocks printed at session end, in insertion order.
REPORTS: Dict[str, List[str]] = {}


def register_report(title: str, lines: List[str]) -> None:
    """Register (or extend) a report block for the terminal summary."""
    REPORTS.setdefault(title, []).extend(lines)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    for title, lines in REPORTS.items():
        terminalreporter.write_sep("=", title)
        for line in lines:
            terminalreporter.write_line(line)


def selected_cases() -> List[str]:
    raw = os.environ.get("REPRO_BENCH_CASES", "")
    if raw.strip():
        return [name.strip() for name in raw.split(",") if name.strip()]
    return case_names()


def bench_scale() -> Optional[float]:
    raw = os.environ.get("REPRO_BENCH_SCALE", "")
    return float(raw) if raw.strip() else None


_CASE_CACHE: Dict[str, object] = {}


def bench_case(name: str):
    """Load (and cache) a contest case at the benchmark scale."""
    key = f"{name}@{bench_scale()}"
    if key not in _CASE_CACHE:
        _CASE_CACHE[key] = load_case(name, scale=bench_scale())
    return _CASE_CACHE[key]


@pytest.fixture(params=selected_cases())
def contest_case(request):
    return bench_case(request.param)
