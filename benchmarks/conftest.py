"""Shared benchmark plumbing.

Environment knobs:

* ``REPRO_BENCH_CASES`` — comma-separated case names to run (default: all
  ten at their per-case default scales).
* ``REPRO_BENCH_SCALE`` — scale override applied to *every* case (e.g.
  ``1.0`` to attempt the full Table II sizes; expect long runtimes).
* ``REPRO_BENCH_ROUTERS`` — comma-separated router subset for Table III.
* ``REPRO_BENCH_OUT`` — directory receiving the machine-readable
  ``BENCH_<name>.json`` result files (default: current directory).
* ``REPRO_BENCH_BASELINE`` — directory holding committed baseline
  ``BENCH_<name>.json`` files (e.g. the repo root).  When set, every
  freshly written trajectory is checked by the perf-regression sentinel
  (:mod:`repro.obs.sentinel`) against its same-named baseline; findings
  are printed in the terminal summary and written to
  ``PERF_SENTINEL.json`` next to the results.

Each benchmark registers a human-readable result table that is printed in
the terminal summary, so ``pytest benchmarks/ --benchmark-only`` emits the
paper-style tables alongside the timing statistics.  Benchmarks that
route cases additionally record structured rows via
:func:`record_bench_result`; at session end each benchmark's rows land in
``BENCH_<name>.json`` so the perf trajectory can be diffed across commits.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional

import pytest

from repro.benchgen import case_names, load_case

#: Report blocks printed at session end, in insertion order.
REPORTS: Dict[str, List[str]] = {}

#: Structured benchmark rows, keyed by bench name, written at session end.
BENCH_RESULTS: Dict[str, List[Dict[str, Any]]] = {}

#: Schema version of the ``BENCH_<name>.json`` files.
BENCH_SCHEMA_VERSION = 1


def register_report(title: str, lines: List[str]) -> None:
    """Register (or extend) a report block for the terminal summary."""
    REPORTS.setdefault(title, []).extend(lines)


def record_bench_result(bench: str, case: str, **fields: Any) -> None:
    """Record one machine-readable benchmark row.

    Args:
        bench: benchmark name; rows land in ``BENCH_<bench>.json``.
        case: contest case name (every row carries its case).
        **fields: numeric/string payload — wall time, critical delay,
            conflict count, iteration counts, ...
    """
    row: Dict[str, Any] = {"case": case}
    row.update(fields)
    BENCH_RESULTS.setdefault(bench, []).append(row)


def write_bench_results(
    out_dir: Path, results: Optional[Mapping[str, List[Dict[str, Any]]]] = None
) -> List[Path]:
    """Write one ``BENCH_<name>.json`` per recorded benchmark.

    Args:
        out_dir: destination directory (created if missing).
        results: rows to write; defaults to the session's global
            :data:`BENCH_RESULTS`.

    Returns:
        The paths written (empty when nothing was recorded).
    """
    rows_by_bench = BENCH_RESULTS if results is None else results
    written: List[Path] = []
    out_dir.mkdir(parents=True, exist_ok=True)
    for bench, rows in rows_by_bench.items():
        path = out_dir / f"BENCH_{bench}.json"
        payload = {
            "schema_version": BENCH_SCHEMA_VERSION,
            "bench": bench,
            "scale": bench_scale(),
            "results": rows,
        }
        path.write_text(json.dumps(payload, indent=1))
        written.append(path)
    return written


def run_perf_sentinel(baseline_dir: Path, written: List[Path]) -> Optional[Path]:
    """Sentinel-check freshly written trajectories against baselines.

    For every written ``BENCH_<name>.json`` with a same-named file under
    ``baseline_dir``, runs :func:`repro.obs.sentinel.check_regressions`
    and registers the outcome as a terminal-summary report block.  The
    combined JSON document lands in ``PERF_SENTINEL.json`` next to the
    fresh results.

    Returns:
        The path of the sentinel document, or ``None`` when no written
        file had a matching baseline.
    """
    from repro.obs.sentinel import check_regressions

    baseline_dir = Path(baseline_dir)
    documents: Dict[str, Any] = {}
    lines: List[str] = []
    for path in written:
        baseline = baseline_dir / path.name
        if not baseline.is_file():
            continue
        report = check_regressions(baseline, path)
        documents[path.name] = report.to_dict()
        status = "OK" if report.ok else "FAIL"
        lines.append(
            f"{path.name}: {status} ({report.compared} compared, "
            f"{report.skipped} skipped)"
        )
        for finding in report.regressions:
            lines.append(f"  REGRESSION  {finding.describe()}")
        for finding in report.improvements:
            lines.append(f"  improved    {finding.describe()}")
    if not documents:
        return None
    register_report("perf sentinel", lines)
    out = written[0].parent / "PERF_SENTINEL.json"
    out.write_text(
        json.dumps(
            {"kind": "repro.perf_sentinel.session", "benches": documents},
            indent=1,
        )
    )
    return out


def pytest_sessionfinish(session, exitstatus):
    out_dir = Path(os.environ.get("REPRO_BENCH_OUT", "."))
    written = write_bench_results(out_dir)
    baseline = os.environ.get("REPRO_BENCH_BASELINE", "")
    if baseline.strip() and written:
        run_perf_sentinel(Path(baseline), written)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    for title, lines in REPORTS.items():
        terminalreporter.write_sep("=", title)
        for line in lines:
            terminalreporter.write_line(line)
    if BENCH_RESULTS:
        out_dir = os.environ.get("REPRO_BENCH_OUT", ".")
        terminalreporter.write_line(
            f"machine-readable results: BENCH_<name>.json in {out_dir!r} "
            f"for {', '.join(sorted(BENCH_RESULTS))}"
        )


def selected_cases() -> List[str]:
    raw = os.environ.get("REPRO_BENCH_CASES", "")
    if raw.strip():
        return [name.strip() for name in raw.split(",") if name.strip()]
    return case_names()


def bench_scale() -> Optional[float]:
    raw = os.environ.get("REPRO_BENCH_SCALE", "")
    return float(raw) if raw.strip() else None


_CASE_CACHE: Dict[str, object] = {}


def bench_case(name: str):
    """Load (and cache) a contest case at the benchmark scale."""
    key = f"{name}@{bench_scale()}"
    if key not in _CASE_CACHE:
        _CASE_CACHE[key] = load_case(name, scale=bench_scale())
    return _CASE_CACHE[key]


@pytest.fixture(params=selected_cases())
def contest_case(request):
    return bench_case(request.param)
