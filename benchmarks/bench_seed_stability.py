"""Stability of the Table III conclusion across generator seeds.

The benchmark suite is synthetic (DESIGN.md substitution 1), so the
reproduction's conclusions must not hinge on one lucky random draw.  This
benchmark regenerates one mid-size case with five different seeds and
checks that our router beats the winner1 proxy on every draw.
"""

from __future__ import annotations

import dataclasses

from benchmarks.conftest import register_report
from repro import SynergisticRouter
from repro.baselines import ContestWinner1Router
from repro.benchgen import CONTEST_CASES, DEFAULT_SCALES, generate_case

SEEDS = [1, 7, 42, 1234, 98765]


def test_seed_stability(benchmark):
    spec = CONTEST_CASES["case07"]
    scale = DEFAULT_SCALES["case07"]

    def run():
        rows = []
        for seed in SEEDS:
            case = generate_case(dataclasses.replace(spec, seed=seed), scale)
            ours = SynergisticRouter(case.system, case.netlist).route()
            theirs = ContestWinner1Router(case.system, case.netlist).route()
            rows.append((seed, ours, theirs))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "case07 regenerated with five seeds (ours vs winner1):",
        f"{'seed':>8s} {'ours':>9s} {'winner1':>9s} {'margin':>8s}",
    ]
    wins = 0
    for seed, ours, theirs in rows:
        margin = (
            (theirs.critical_delay - ours.critical_delay) / theirs.critical_delay
            if theirs.critical_delay
            else 0.0
        )
        lines.append(
            f"{seed:8d} {ours.critical_delay:9.1f} "
            f"{theirs.critical_delay:9.1f} {margin:7.1%}"
        )
        if (
            ours.conflict_count == 0
            and ours.critical_delay <= theirs.critical_delay + 1e-9
        ):
            wins += 1
    lines.append(f"ours wins or ties on {wins}/{len(rows)} draws")
    register_report("Seed stability (synthetic-benchmark robustness)", lines)
    assert wins == len(rows)
