"""Certified optimality gaps on the 2-FPGA contest cases.

For two-FPGA systems the bisection/distance bounds of
`repro.analysis.lower_bound` are sound for *any* router; reporting ours
against them turns "we beat the baselines" into "we are provably within
X% of optimal" on those cases.
"""

from __future__ import annotations

from benchmarks.conftest import bench_case, register_report, selected_cases
from repro import SynergisticRouter
from repro.analysis import certified_lower_bound

TWO_FPGA_CASES = ["case01", "case02", "case03", "case04"]


def test_certified_gaps(benchmark):
    cases = [c for c in TWO_FPGA_CASES if c in selected_cases()] or TWO_FPGA_CASES[:1]

    def run():
        rows = []
        for name in cases:
            case = bench_case(name)
            result = SynergisticRouter(case.system, case.netlist).route()
            bound = certified_lower_bound(case.system, case.netlist)
            rows.append((name, result.critical_delay, bound))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"{'case':8s} {'ours':>8s} {'cert. LB':>9s} {'gap':>7s}  argument",
    ]
    for name, delay, bound in rows:
        gap = (delay - bound.value) / bound.value if bound.value else float("inf")
        lines.append(
            f"{name:8s} {delay:8.1f} {bound.value:9.1f} {gap:6.0%}  {bound.argument}"
        )
        assert bound.value <= delay + 1e-9  # soundness
    register_report("Certified optimality gaps (2-FPGA cases)", lines)
