"""Table II: statistics of the (generated) contest benchmarks.

Regenerates every case and reports the columns of the paper's Table II —
#FPGAs, #Dies, SLL #Edges/#Wires, TDM #Edges/#Wires, #Nets, #Conns — at
the configured scale.  The benchmark measures generation time.
"""

from __future__ import annotations

from benchmarks.conftest import bench_case, register_report, selected_cases
from repro.benchgen import CONTEST_CASES


def test_table2_statistics(benchmark):
    names = selected_cases()

    def generate_all():
        return [bench_case(name) for name in names]

    cases = benchmark.pedantic(generate_all, rounds=1, iterations=1)

    lines = [
        f"{'Design':8s} {'#FPGAs':>6s} {'#Dies':>5s} {'SLL#E':>6s} {'SLL#W':>9s} "
        f"{'TDM#E':>6s} {'TDM#W':>8s} {'#Nets':>9s} {'#Conns':>9s} {'scale':>8s}"
    ]
    for case in cases:
        stats = case.stats()
        lines.append(
            f"{case.spec.name:8s} {stats['fpgas']:6d} {stats['dies']:5d} "
            f"{stats['sll_edges']:6d} {stats['sll_wires']:9d} "
            f"{stats['tdm_edges']:6d} {stats['tdm_wires']:8d} "
            f"{stats['nets']:9d} {stats['connections']:9d} {case.scale:8.4f}"
        )
    lines.append("")
    lines.append("Published full-scale rows (Table II) for reference:")
    for name in names:
        spec = CONTEST_CASES[name]
        lines.append(
            f"{spec.name:8s} {spec.num_fpgas:6d} {spec.num_dies:5d} "
            f"{spec.num_sll_edges:6d} {spec.sll_wires_total:9d} "
            f"{spec.num_tdm_edges:6d} {spec.tdm_wires_total:8d} "
            f"{spec.num_nets:9d} {spec.num_connections:9d}"
        )
    register_report("Table II: benchmark statistics", lines)
    assert len(cases) == len(names)
