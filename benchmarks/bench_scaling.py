"""Runtime scaling of our router: instance size and worker count.

The paper's runtime advantage (5.761x over [18], 34x over the 3rd winner)
rests on the router scaling gracefully; the first benchmark sweeps one
case across scales and reports connections vs wall-clock, so super-linear
blow-ups in any phase show up immediately.  The second sweeps the worker
count (1/2/4/8, thread vs process) over a generated 10x-contest case to
measure the sharded first pass (docs/performance.md); its rows land in
``BENCH_parallel.json`` as the sentinel baseline, each stamped with the
backend, resolved worker count and the host's core count so comparisons
across machines stay apples-to-apples.
"""

from __future__ import annotations

import os
import time

from benchmarks.conftest import record_bench_result, register_report
from repro import DelayModel, RouterConfig, SynergisticRouter
from repro.api import parallel_run_info, route, solution_fingerprint
from repro.benchgen import load_case
from repro.benchgen.generator import BenchmarkSpec, generate_case

SCALES = [1.0 / 64, 1.0 / 32, 1.0 / 16]

#: 10x the shard-friendly contest-like case of tests/test_sharding.py:
#: 8 FPGAs, strongly local traffic, so the 8-shard cut has real interior
#: work for every worker.
PARALLEL_SPEC = BenchmarkSpec(
    name="shardsweep",
    num_fpgas=8,
    sll_wires_total=8000,
    num_tdm_edges=14,
    tdm_wires_total=6000,
    num_nets=1600,
    num_connections=2800,
    seed=7,
    locality=0.9,
    cross_weight=1.0,
)

WORKER_SWEEP = [1, 2, 4, 8]
BACKENDS = ["thread", "process"]

#: The acceptance target only binds on hosts that can physically run 8
#: workers; smaller boxes still record honest rows for the sentinel.
SPEEDUP_TARGET = 3.0
SPEEDUP_MIN_CORES = 8


def test_runtime_scaling(benchmark):
    rows = []

    def sweep():
        for scale in SCALES:
            case = load_case("case06", scale=scale)
            start = time.perf_counter()
            result = SynergisticRouter(case.system, case.netlist).route()
            elapsed = time.perf_counter() - start
            rows.append(
                (
                    scale,
                    case.netlist.num_connections,
                    elapsed,
                    result.critical_delay,
                    result.conflict_count,
                )
            )
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        f"{'scale':>8s} {'conns':>8s} {'time(s)':>9s} {'us/conn':>9s} "
        f"{'delay':>8s} {'conf':>6s}"
    ]
    for scale, conns, elapsed, delay, conf in rows:
        per_conn = elapsed / conns * 1e6 if conns else 0.0
        lines.append(
            f"{scale:8.4f} {conns:8d} {elapsed:9.2f} {per_conn:9.1f} "
            f"{delay:8.1f} {conf:6d}"
        )
    register_report("Runtime scaling (case06 sweep)", lines)
    # Soft check: per-connection cost should not explode across a 4x size
    # range (allows congestion effects, catches quadratic blow-ups).
    per_conn = [row[2] / row[1] for row in rows]
    assert per_conn[-1] <= per_conn[0] * 8


def test_worker_count_sweep(benchmark):
    """Thread vs process backend across 1/2/4/8 workers, shards pinned.

    Pinning ``num_shards`` to the FPGA count keeps the boundary-first
    schedule constant across the sweep, so every cell must produce the
    same fingerprint — the determinism check rides along with the
    timing.  The >= 3x speedup acceptance only binds on hosts with at
    least :data:`SPEEDUP_MIN_CORES` cores; a 1-core container records
    honest (slower, spawn-dominated) numbers instead.
    """
    case = generate_case(PARALLEL_SPEC, 1.0)
    delay_model = DelayModel()
    cpu_count = os.cpu_count() or 1
    rows = []

    def sweep():
        for backend in BACKENDS:
            for workers in WORKER_SWEEP:
                config = RouterConfig(
                    parallel_backend=backend,
                    num_workers=workers,
                    num_shards=PARALLEL_SPEC.num_fpgas,
                )
                start = time.perf_counter()
                result = route(
                    case.system, case.netlist, delay_model, config=config
                )
                elapsed = time.perf_counter() - start
                rows.append(
                    {
                        "backend": backend,
                        "workers": workers,
                        "elapsed": elapsed,
                        "fingerprint": solution_fingerprint(
                            result.solution, delay_model
                        ),
                        "conflicts": result.conflict_count,
                        "delay": result.critical_delay,
                        "info": parallel_run_info(config),
                    }
                )
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [
        f"{'backend':>8s} {'workers':>8s} {'time(s)':>9s} {'speedup':>8s} "
        f"{'conf':>6s}"
    ]
    base_time = {}
    for row in rows:
        backend, workers = row["backend"], row["workers"]
        base_time.setdefault(backend, row["elapsed"])
        speedup = base_time[backend] / row["elapsed"] if row["elapsed"] else 0.0
        lines.append(
            f"{backend:>8s} {workers:8d} {row['elapsed']:9.2f} "
            f"{speedup:8.2f} {row['conflicts']:6d}"
        )
        record_bench_result(
            "parallel",
            PARALLEL_SPEC.name,
            backend=backend,
            workers=workers,
            resolved_workers=row["info"]["resolved_workers"],
            num_shards=PARALLEL_SPEC.num_fpgas,
            cpu_count=cpu_count,
            wall_seconds=round(row["elapsed"], 4),
            speedup_vs_1=round(speedup, 3),
            critical_delay=row["delay"],
            conflicts=row["conflicts"],
            fingerprint=row["fingerprint"][:16],
        )
    lines.append(f"(host cpu_count = {cpu_count})")
    register_report("Worker-count sweep (10x shard case)", lines)

    # Determinism: shards pinned -> every cell is bit-identical.
    fingerprints = {row["fingerprint"] for row in rows}
    assert len(fingerprints) == 1, "worker sweep broke deterministic merge"
    # Acceptance (>= 3x at 8 process workers) binds only where the host
    # can actually run 8 workers in parallel.
    if cpu_count >= SPEEDUP_MIN_CORES:
        process_times = {
            row["workers"]: row["elapsed"]
            for row in rows
            if row["backend"] == "process"
        }
        assert process_times[1] / process_times[8] >= SPEEDUP_TARGET
