"""Runtime scaling of our router with instance size.

The paper's runtime advantage (5.761x over [18], 34x over the 3rd winner)
rests on the router scaling gracefully; this benchmark sweeps one case
across scales and reports connections vs wall-clock, so super-linear
blow-ups in any phase show up immediately.
"""

from __future__ import annotations

import time

from benchmarks.conftest import register_report
from repro import SynergisticRouter
from repro.benchgen import load_case

SCALES = [1.0 / 64, 1.0 / 32, 1.0 / 16]


def test_runtime_scaling(benchmark):
    rows = []

    def sweep():
        for scale in SCALES:
            case = load_case("case06", scale=scale)
            start = time.perf_counter()
            result = SynergisticRouter(case.system, case.netlist).route()
            elapsed = time.perf_counter() - start
            rows.append(
                (
                    scale,
                    case.netlist.num_connections,
                    elapsed,
                    result.critical_delay,
                    result.conflict_count,
                )
            )
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        f"{'scale':>8s} {'conns':>8s} {'time(s)':>9s} {'us/conn':>9s} "
        f"{'delay':>8s} {'conf':>6s}"
    ]
    for scale, conns, elapsed, delay, conf in rows:
        per_conn = elapsed / conns * 1e6 if conns else 0.0
        lines.append(
            f"{scale:8.4f} {conns:8d} {elapsed:9.2f} {per_conn:9.1f} "
            f"{delay:8.1f} {conf:6d}"
        )
    register_report("Runtime scaling (case06 sweep)", lines)
    # Soft check: per-connection cost should not explode across a 4x size
    # range (allows congestion effects, catches quadratic blow-ups).
    per_conn = [row[2] / row[1] for row in rows]
    assert per_conn[-1] <= per_conn[0] * 8
