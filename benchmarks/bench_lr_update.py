"""Accelerated multiplicative update (Eq. 13 + [15]) vs plain subgradient.

The paper adopts the acceleration scheme of Lin et al. [15] "to obtain
the solution of LDP quickly".  This benchmark quantifies that choice:
both updates solve the same LR subproblems; the accelerated one should
reach a (near-)converged gap in far fewer iterations.
"""

from __future__ import annotations

from benchmarks.conftest import bench_case, register_report, selected_cases
from repro import DelayModel, RouterConfig
from repro.core.incidence import TdmIncidence
from repro.core.initial_routing import InitialRouter
from repro.core.lagrangian import LagrangianTdmAssigner


def test_lr_update_comparison(benchmark):
    name = "case06" if "case06" in selected_cases() else selected_cases()[-1]
    case = bench_case(name)
    model = DelayModel()
    config = RouterConfig(lr_max_iterations=200)
    solution = InitialRouter(case.system, case.netlist, model, config).route()
    incidence = TdmIncidence(case.system, case.netlist, solution, model)
    if incidence.num_pairs == 0:
        register_report("LR update comparison", [f"{name}: no TDM usage"])
        return

    def run():
        out = {}
        for update in ("accelerated", "subgradient"):
            assigner = LagrangianTdmAssigner(incidence, config, update=update)
            out[update] = assigner.solve()
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"case: {name}  (max {config.lr_max_iterations} iterations, "
        f"eps {config.lr_epsilon})",
        f"{'update':14s} {'iters':>6s} {'converged':>10s} {'final gap':>11s} "
        f"{'best delay':>11s}",
    ]
    for update, result in results.items():
        history = result.history
        lines.append(
            f"{update:14s} {history.num_iterations:6d} "
            f"{str(history.converged):>10s} {history.final_gap:11.2e} "
            f"{history.best_delay:11.2f}"
        )
    register_report("LR update comparison (Eq. 13 vs subgradient)", lines)
    accelerated = results["accelerated"].history
    subgradient = results["subgradient"].history
    # The paper's choice must converge at least as fast and as tight.
    assert accelerated.final_gap <= subgradient.final_gap + 1e-9
