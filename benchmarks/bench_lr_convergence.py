"""Algorithm 1 convergence: primal-dual gap per LR iteration.

Not a figure in the paper, but the property Algorithm 1's stopping rule
relies on: the gap between the critical delay and the Lagrangian lower
bound must shrink below ε within MaxIter iterations.  The series is
reported so regressions in the multiplier update are visible.
"""

from __future__ import annotations

from benchmarks.conftest import bench_case, register_report, selected_cases
from repro import DelayModel, RouterConfig
from repro.core.incidence import TdmIncidence
from repro.core.initial_routing import InitialRouter
from repro.core.lagrangian import LagrangianTdmAssigner


def test_lr_convergence(benchmark):
    name = "case06" if "case06" in selected_cases() else selected_cases()[-1]
    case = bench_case(name)
    model = DelayModel()
    config = RouterConfig()
    solution = InitialRouter(case.system, case.netlist, model, config).route()
    incidence = TdmIncidence(case.system, case.netlist, solution, model)
    if incidence.num_pairs == 0:
        register_report("LR convergence", [f"{name}: no TDM usage, skipped"])
        return

    result = benchmark.pedantic(
        lambda: LagrangianTdmAssigner(incidence, config).solve(),
        rounds=1,
        iterations=1,
    )
    history = result.history
    lines = [
        f"case: {name}  iterations: {history.num_iterations}  "
        f"converged: {history.converged}  final gap: {history.final_gap:.2e}",
        f"{'iter':>5s} {'critical':>10s} {'lower bnd':>10s} {'gap':>10s}",
    ]
    step = max(1, history.num_iterations // 12)
    for it in history.iterations[::step]:
        lines.append(
            f"{it.iteration:5d} {it.critical_delay:10.2f} "
            f"{it.lower_bound:10.2f} {it.gap:10.2e}"
        )
    last = history.iterations[-1]
    if last.iteration % step:
        lines.append(
            f"{last.iteration:5d} {last.critical_delay:10.2f} "
            f"{last.lower_bound:10.2f} {last.gap:10.2e}"
        )
    register_report("LR convergence (Algorithm 1)", lines)
    gaps = [it.gap for it in history.iterations]
    assert gaps[-1] <= gaps[0]
