"""Fig. 5(a): baseline topologies refined by our TDM ratio algorithms.

For every baseline router we take its routed topology, re-run our full
phase II (Lagrangian initial ratios, legalization, margin-aware
refinement, wire assignment) on it, and compare three critical delays:
the baseline's own, the refined one, and our full router's.  The paper
reports that refinement improves the winners/[18] by 0.3%-10.3% and that
the refined results remain 5.1%-13.5% behind our router.
"""

from __future__ import annotations

from typing import Dict, List

import pytest

from benchmarks.conftest import bench_case, register_report, selected_cases
from repro import DelayModel, SynergisticRouter
from repro.baselines import all_baseline_routers
from repro.core.router import TdmAssigner
from repro.timing import TimingAnalyzer

#: Fig. 5(a) routers (the adapted [9] is excluded there, as in the paper).
BASELINES = ["winner1", "winner2", "winner3", "iseda2024"]

_DEFAULT_CASES = [c for c in selected_cases() if c in ("case05", "case06", "case07")]
CASES = _DEFAULT_CASES or selected_cases()[:1]

RESULTS: Dict[str, List[str]] = {}


@pytest.mark.parametrize("case_name", CASES)
def test_fig5a_refinement(benchmark, case_name):
    case = bench_case(case_name)
    model = DelayModel()
    analyzer = TimingAnalyzer(case.system, case.netlist, model)
    registry = all_baseline_routers()

    def run():
        rows = []
        ours = SynergisticRouter(case.system, case.netlist, model).route()
        for name in BASELINES:
            baseline = registry[name](case.system, case.netlist, model).route()
            if baseline.conflict_count:
                rows.append((name, baseline.critical_delay, float("nan"), ours))
                continue
            refined = baseline.solution.copy_topology()
            TdmAssigner(case.system, case.netlist, model).assign(refined)
            rows.append(
                (name, baseline.critical_delay, analyzer.critical_delay(refined), ours)
            )
        return rows, ours

    rows, ours = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        f"-- {case_name} (ours = {ours.critical_delay:.1f}) --",
        f"{'baseline':12s} {'own':>10s} {'refined':>10s} {'refine%':>9s} {'vs ours':>9s}",
    ]
    for name, own, refined, _ in rows:
        if refined != refined:  # NaN: baseline was illegal
            lines.append(f"{name:12s} {own:10.1f} {'FAIL':>10s}")
            continue
        improve = (own - refined) / own * 100 if own else 0.0
        vs_ours = (
            (refined - ours.critical_delay) / ours.critical_delay * 100
            if ours.critical_delay
            else 0.0
        )
        lines.append(
            f"{name:12s} {own:10.1f} {refined:10.1f} {improve:8.1f}% {vs_ours:8.1f}%"
        )
        # Shape assertion: refinement helps or stays within one TDM
        # legalization step (p * d1) of the baseline's own assignment —
        # our phase II re-derives ratios from scratch, so exact
        # monotonicity per case is not guaranteed, only the trend.
        slack = model.d1 * model.tdm_step
        assert refined <= own + slack + 1e-9
    register_report("Fig. 5(a): our TDM algorithms on baseline topologies", lines)
