"""Fig. 4: minimum Steiner tree vs shortest-path tree trade-off.

The paper's Fig. 4 illustrates, on a multi-fanout net, that a minimum
Steiner tree minimizes edge usage but inflates the worst source-to-sink
delay, while a shortest-path tree minimizes per-connection delay at the
price of extra edges.  This benchmark quantifies both metrics on a
population of multi-fanout nets.
"""

from __future__ import annotations

from benchmarks.conftest import bench_case, register_report
from repro import DelayModel
from repro.baselines import SptTopologyRouter, SteinerTopologyRouter
from repro.route.tree import net_edge_union
from repro.timing import TimingAnalyzer


def _total_edge_usage(netlist, solution):
    total = 0
    for net in netlist.nets:
        paths = [
            solution.path(conn.index)
            for conn in netlist.connections_of(net.index)
        ]
        total += len(net_edge_union(p for p in paths if p))
    return total


def test_fig4_steiner_vs_spt(benchmark):
    case = bench_case("case05")
    model = DelayModel()
    analyzer = TimingAnalyzer(case.system, case.netlist, model)

    def run():
        steiner = SteinerTopologyRouter(case.system, case.netlist, model).route()
        spt = SptTopologyRouter(case.system, case.netlist, model).route()
        return steiner, spt

    steiner, spt = benchmark.pedantic(run, rounds=1, iterations=1)

    steiner_usage = _total_edge_usage(case.netlist, steiner)
    spt_usage = _total_edge_usage(case.netlist, spt)
    steiner_delay = analyzer.critical_delay(steiner, assume_min_ratio=True)
    spt_delay = analyzer.critical_delay(spt, assume_min_ratio=True)

    register_report(
        "Fig. 4: Steiner vs shortest-path-tree trade-off (case05 topology)",
        [
            f"{'Strategy':22s} {'edge usage':>12s} {'topo delay (min-ratio)':>24s}",
            f"{'min Steiner tree':22s} {steiner_usage:12d} {steiner_delay:24.2f}",
            f"{'shortest-path tree':22s} {spt_usage:12d} {spt_delay:24.2f}",
            "",
            "Expected shape (paper Fig. 4): Steiner uses fewer edges; the",
            "shortest-path tree has the lower worst source-to-sink delay.",
        ],
    )
    assert steiner_usage <= spt_usage
