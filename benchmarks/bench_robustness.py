"""Robustness of the Table III ordering to the substituted delay constants.

The contest's exact delay constants are not public (DESIGN.md
substitution 5), so the reproduction calibrated its own.  This benchmark
re-runs our router against two baselines under *three different* constant
choices and checks that the ordering — ours <= winner1 <= winner2 on the
congested case — holds for all of them, i.e. the headline conclusion does
not hinge on the calibration.
"""

from __future__ import annotations

from typing import Dict

from benchmarks.conftest import bench_case, register_report, selected_cases
from repro import DelayModel, SynergisticRouter
from repro.baselines import ContestWinner1Router, ContestWinner2Router

MODELS: Dict[str, DelayModel] = {
    "calibrated (0.5/2.0/0.5/p8)": DelayModel(),
    "uniform (1/1/1/p4)": DelayModel(d_sll=1.0, d0=1.0, d1=1.0, tdm_step=4),
    "tdm-heavy (0.25/4.0/1.0/p16)": DelayModel(
        d_sll=0.25, d0=4.0, d1=1.0, tdm_step=16
    ),
}


def test_ordering_robust_to_delay_constants(benchmark):
    name = "case06" if "case06" in selected_cases() else selected_cases()[-1]
    case = bench_case(name)
    rows = []

    def run():
        for label, model in MODELS.items():
            ours = SynergisticRouter(case.system, case.netlist, model).route()
            w1 = ContestWinner1Router(case.system, case.netlist, model).route()
            w2 = ContestWinner2Router(case.system, case.netlist, model).route()
            rows.append((label, ours, w1, w2))
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"case: {name}",
        f"{'constants':30s} {'ours':>9s} {'winner1':>9s} {'winner2':>9s}",
    ]
    for label, ours, w1, w2 in rows:
        lines.append(
            f"{label:30s} {ours.critical_delay:9.1f} "
            f"{w1.critical_delay:9.1f} {w2.critical_delay:9.1f}"
        )
        # The reproduction's conclusion must survive each constant choice.
        if ours.conflict_count == 0 and w1.conflict_count == 0:
            assert ours.critical_delay <= w1.critical_delay + 1e-9, label
        if ours.conflict_count == 0 and w2.conflict_count == 0:
            assert ours.critical_delay <= w2.critical_delay + 1e-9, label
    register_report("Robustness: delay-constant sensitivity", lines)
