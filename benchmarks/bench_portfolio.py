"""Portfolio (multi-start) routing vs the single default configuration.

Quantifies what a restart budget buys: the portfolio runs four
configurations and keeps the best legal result — the quality/runtime
trade contest entries make.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import bench_case, register_report, selected_cases
from repro import SynergisticRouter
from repro.core.portfolio import PortfolioRouter

_DEFAULT = [c for c in selected_cases() if c in ("case06", "case08", "case10")]
CASES = _DEFAULT or selected_cases()[:1]


@pytest.mark.parametrize("case_name", CASES)
def test_portfolio_vs_single(benchmark, case_name):
    case = bench_case(case_name)

    def run():
        start = time.perf_counter()
        single = SynergisticRouter(case.system, case.netlist).route()
        single_time = time.perf_counter() - start
        start = time.perf_counter()
        outcome = PortfolioRouter(case.system, case.netlist).route()
        portfolio_time = time.perf_counter() - start
        return single, single_time, outcome, portfolio_time

    single, single_time, outcome, portfolio_time = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    gain = (
        (single.critical_delay - outcome.best.critical_delay)
        / single.critical_delay
        if single.critical_delay
        else 0.0
    )
    register_report(
        "Portfolio routing vs single config",
        [
            f"{case_name}: single={single.critical_delay:.1f} "
            f"({single_time:.1f}s) | portfolio={outcome.best.critical_delay:.1f} "
            f"via {outcome.best_name} ({portfolio_time:.1f}s) | gain {gain:.1%}",
        ],
    )
    assert outcome.best.critical_delay <= single.critical_delay + 1e-9
