PYTHON ?= python

.PHONY: install test bench bench-fast examples suite clean

install:
	pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Quick benchmark pass on the small cases only.
bench-fast:
	REPRO_BENCH_CASES=case01,case02,case03,case04,case05 \
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f > /dev/null || exit 1; done
	@echo "all examples ran cleanly"

# Table III sweep only.
table3:
	$(PYTHON) -m pytest benchmarks/bench_table3_comparison.py --benchmark-only

clean:
	rm -rf .pytest_cache .benchmarks build *.egg-info src/*.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
