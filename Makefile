PYTHON ?= python

.PHONY: install test lint chaos serve bench bench-fast perf profile examples suite trace clean

install:
	pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

# Invariant linter (docs/static-analysis.md).  Also runs inside tier-1
# via tests/test_lint_rules.py; this target is the fast direct path and
# leaves a machine-readable findings file for CI artifacts.
lint:
	PYTHONPATH=src $(PYTHON) -m repro.cli.lint_cli src/repro examples \
		--output lint_findings.json

# Resilience suite (docs/resilience.md): checkpoint/resume bit-equality
# plus the fault-injection chaos tests (worker kills, induced
# exceptions, wall-clock budget exhaustion) with 1 and 4 workers.
chaos:
	PYTHONPATH=src $(PYTHON) -m pytest tests/test_resilience.py tests/test_chaos.py -q

# Serving-layer smoke (docs/serving.md): replay a deterministic load
# through the routing service and fail unless every fingerprint matches
# its sequential run, zero requests fail, and the warm cache hits.
serve:
	PYTHONPATH=src $(PYTHON) -m repro.cli.serve_cli \
		--cases case02,case05 --requests 12 --concurrency 3 --seed 2025 \
		--report serve_report.json --trace-out serve_trace.jsonl --check

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Quick benchmark pass on the small cases only.
bench-fast:
	REPRO_BENCH_CASES=case01,case02,case03,case04,case05 \
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f > /dev/null || exit 1; done
	@echo "all examples ran cleanly"

# Performance gate: runtime budgets plus the phase I kernel and phase II
# pipeline speedup benchmarks (docs/performance.md).  Fresh trajectories
# land in bench_out/ and the perf-regression sentinel compares them
# against the committed baselines (docs/observability.md) — the gate
# fails on a statistically meaningful slowdown, not on machine noise.
perf:
	PYTHONPATH=src $(PYTHON) -m pytest tests/test_performance_guards.py -q
	REPRO_BENCH_OUT=bench_out REPRO_BENCH_BASELINE=. \
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/bench_kernel.py --benchmark-only -q
	REPRO_BENCH_OUT=bench_out REPRO_BENCH_BASELINE=. \
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/bench_phase2.py --benchmark-only -q
	PYTHONPATH=src $(PYTHON) -m repro.cli.perf_cli BENCH_phase2.json \
		bench_out/BENCH_phase2.json --output bench_out/PERF_SENTINEL_phase2.json

# Profile a full case05 run: trace it, print the self-time attribution
# table and critical path, and export a Chrome flamegraph
# (chrome://tracing) from the same trace (docs/observability.md).
profile:
	PYTHONPATH=src $(PYTHON) -m repro.cli.main --contest-case 5 \
		--trace-out trace.jsonl --metrics-out run_report.json --quiet
	PYTHONPATH=src $(PYTHON) -m repro.cli.trace_cli trace.jsonl \
		--critical-path --export chrome --out trace_chrome.json

# Table III sweep only.
table3:
	$(PYTHON) -m pytest benchmarks/bench_table3_comparison.py --benchmark-only

# Route a small generated case with full instrumentation on, then
# schema-validate the run report (docs/observability.md).
trace:
	PYTHONPATH=src $(PYTHON) -m repro.cli.main --contest-case 2 \
		--trace-out trace.jsonl --metrics-out run_report.json --log-level info
	PYTHONPATH=src $(PYTHON) -c "\
	import json; \
	from repro.obs import assert_valid_run_report, read_jsonl; \
	assert_valid_run_report(json.load(open('run_report.json'))); \
	events = read_jsonl('trace.jsonl'); \
	assert {e['type'] for e in events} >= {'span', 'counter', 'event'}, 'trace incomplete'; \
	print(f'run report schema OK; {len(events)} trace events')"

clean:
	rm -rf .pytest_cache .benchmarks build *.egg-info src/*.egg-info bench_out
	rm -f trace.jsonl run_report.json lint_findings.json
	rm -f trace_chrome.json PERF_SENTINEL.json
	rm -f serve_report.json serve_trace.jsonl
	find . -maxdepth 1 -name 'BENCH_*.json' ! -name BENCH_phase2.json \
		! -name BENCH_parallel.json ! -name BENCH_serve.json -delete
	find . -name __pycache__ -type d -exec rm -rf {} +
