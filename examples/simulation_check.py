#!/usr/bin/env python3
"""Cross-validating the delay model against cycle-level simulation.

Run with::

    python examples/simulation_check.py

The abstract delay model prices a TDM hop at ``d0 + d1 * r``.  Is that
meaningful?  This example routes a contest case, replays the physical
slot frames of every assigned TDM wire with the cycle-level simulator
(Fig. 1(b)/(c) semantics), and compares the model's per-connection delay
with the simulated best/mean/worst latency over all launch phases.
"""

from repro import SynergisticRouter
from repro.benchgen import load_case
from repro.emulation import TdmTransmissionSimulator


def main():
    case = load_case("case03")
    result = SynergisticRouter(case.system, case.netlist).route()
    simulator = TdmTransmissionSimulator(result.solution)
    netlist = case.netlist

    print(f"case03: critical delay {result.critical_delay:.1f} (abstract model)")
    print(
        f"\n{'connection':24s} {'best':>7s} {'mean':>7s} {'model':>7s} {'worst':>7s}"
    )
    shown = 0
    for conn in netlist.connections:
        latency = simulator.connection_latency(conn.index)
        if latency.worst == latency.best:
            continue  # SLL-only: nothing time-multiplexed to show
        net = netlist.net(conn.net_index)
        label = f"{net.name} -> die {conn.sink_die}"
        print(
            f"{label:24s} {latency.best:7.1f} {latency.mean:7.1f} "
            f"{latency.model_delay:7.1f} {latency.worst:7.1f}"
        )
        shown += 1
        if shown >= 10:
            break

    problems = simulator.validate_model()
    if problems:
        print("\nmodel/mechanism discrepancies:")
        for problem in problems:
            print(f"  {problem}")
    else:
        print(
            "\nmodel consistent with the mechanism on every connection: the "
            "abstract delay sits between the simulated mean and worst-case "
            "slot wait (d1 = 0.5 prices the expected wait of half a frame)."
        )


if __name__ == "__main__":
    main()
