#!/usr/bin/env python3
"""Incremental (ECO) flow: update a routed system after design changes.

Run with::

    python examples/eco_flow.py

Emulation projects iterate daily: a few nets change, and re-routing the
whole system discards a known-good result.  This example routes a design
once, then plays three typical engineering change orders against it:

1. *timing fix* — rip up and re-route the nets on the critical path,
2. *netlist revision* — migrate the solution to a new netlist revision
   (one net re-targeted, one added, one removed),
3. sanity: verify every incremental result against the full DRC.
"""

import time

from repro import (
    DelayModel,
    DesignRuleChecker,
    Net,
    Netlist,
    SynergisticRouter,
)
from repro.benchgen import load_case
from repro.api import EcoRouter


def main():
    case = load_case("case05")
    system, netlist = case.system, case.netlist
    model = DelayModel()
    checker = DesignRuleChecker(system, netlist, model)

    start = time.perf_counter()
    base = SynergisticRouter(system, netlist, model).route()
    full_time = time.perf_counter() - start
    print(
        f"baseline route: delay {base.critical_delay:.1f}, "
        f"{netlist.num_connections} connections, {full_time:.2f}s"
    )

    eco = EcoRouter(system, model)

    # --- ECO 1: re-route the critical path's nets -------------------------
    critical_conn = netlist.connections[base.timing.critical_connection]
    start = time.perf_counter()
    fixed = eco.reroute_nets(base.solution, [critical_conn.net_index])
    eco_time = time.perf_counter() - start
    print(
        f"\nECO 1 (timing fix, net {netlist.net(critical_conn.net_index).name!r}): "
        f"delay {fixed.critical_delay:.1f}, rerouted "
        f"{fixed.rerouted_connections} connections in {eco_time:.2f}s "
        f"({eco_time / full_time:.0%} of a full route)"
    )
    assert checker.check(fixed.solution).is_clean

    # --- ECO 2: migrate to a new netlist revision --------------------------
    revised = []
    for net in netlist.nets:
        if net.index == 0 and net.is_die_crossing:
            # Re-target net 0's first sink.
            new_sink = (net.sink_dies[0] + 2) % system.num_dies
            if new_sink == net.source_die:
                new_sink = (new_sink + 1) % system.num_dies
            revised.append(Net(net.name, net.source_die, (new_sink,)))
        elif net.index == 1:
            continue  # net removed in the revision
        else:
            revised.append(Net(net.name, net.source_die, net.sink_dies))
    revised.append(Net("late_addition", 0, (system.num_dies - 1,)))
    new_netlist = Netlist(revised)

    start = time.perf_counter()
    migrated = eco.migrate(base.solution, new_netlist)
    migrate_time = time.perf_counter() - start
    print(
        f"\nECO 2 (netlist revision): preserved "
        f"{migrated.preserved_connections} connections, rerouted "
        f"{migrated.rerouted_connections}, delay {migrated.critical_delay:.1f}, "
        f"{migrate_time:.2f}s"
    )
    revision_checker = DesignRuleChecker(system, new_netlist, model)
    report = revision_checker.check(migrated.solution)
    print(f"revision DRC: {report.summary()}")


if __name__ == "__main__":
    main()
