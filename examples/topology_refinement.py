#!/usr/bin/env python3
"""Refining a foreign routing topology with our TDM algorithms (Fig. 5a).

Run with::

    python examples/topology_refinement.py

Emulation teams often already have a routing topology (from a vendor tool
or an older in-house router) and only want better TDM ratios.  This
example routes a case with a baseline router, keeps its topology, and
re-runs our full phase II (Lagrangian initial ratios, legalization,
margin-aware refinement, wire assignment) on it — the exact experiment of
the paper's Fig. 5(a).
"""

from repro import DelayModel, DesignRuleChecker, SynergisticRouter
from repro.baselines import all_baseline_routers
from repro.benchgen import load_case
from repro.api import TdmAssigner
from repro.timing import TimingAnalyzer


def main():
    case = load_case("case05")
    model = DelayModel()
    analyzer = TimingAnalyzer(case.system, case.netlist, model)
    checker = DesignRuleChecker(case.system, case.netlist, model)

    ours = SynergisticRouter(case.system, case.netlist, model).route()
    print(f"our full router: critical delay {ours.critical_delay:.1f}\n")

    print(f"{'baseline':12s} {'own':>8s} {'refined':>9s} {'improve':>9s} {'vs ours':>9s}")
    for name, cls in all_baseline_routers().items():
        baseline = cls(case.system, case.netlist, model).route()
        if baseline.conflict_count:
            print(f"{name:12s} {'FAIL':>8s}")
            continue

        refined = baseline.solution.copy_topology()  # topology only
        TdmAssigner(case.system, case.netlist, model).assign(refined)
        assert checker.check(refined).is_clean

        refined_delay = analyzer.critical_delay(refined)
        improve = (baseline.critical_delay - refined_delay) / baseline.critical_delay
        gap = (refined_delay - ours.critical_delay) / ours.critical_delay
        print(
            f"{name:12s} {baseline.critical_delay:8.1f} {refined_delay:9.1f} "
            f"{improve:8.1%} {gap:+8.1%}"
        )

    print(
        "\npaper's Fig. 5(a): refinement buys 0.3%-10.3%; refined baselines "
        "remain 5.1%-13.5% behind the full router."
    )


if __name__ == "__main__":
    main()
