#!/usr/bin/env python3
"""Contest flow: generate a contest case, route it with every router.

Run with::

    python examples/contest_flow.py [case_name] [scale]

Reproduces one row of the paper's Table III: critical connection delay,
SLL conflicts (#CONF) and runtime for our router, the three contest
winner proxies, the [18] proxy and the adapted FPGA-level router.
"""

import sys
import time

from repro import DelayModel, DesignRuleChecker, SynergisticRouter
from repro.baselines import all_baseline_routers
from repro.benchgen import load_case


def main():
    case_name = sys.argv[1] if len(sys.argv) > 1 else "case05"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else None
    case = load_case(case_name, scale=scale)
    print(f"case {case.spec.name} at scale {case.scale}: {case.stats()}")

    routers = {"ours": SynergisticRouter}
    routers.update(all_baseline_routers())
    checker = DesignRuleChecker(case.system, case.netlist, DelayModel())

    print(f"\n{'router':20s} {'delay':>9s} {'#CONF':>7s} {'time':>8s}  drc")
    for name, cls in routers.items():
        start = time.perf_counter()
        result = cls(case.system, case.netlist).route()
        elapsed = time.perf_counter() - start
        report = checker.check(result.solution)
        verdict = "clean" if report.is_clean else report.summary()
        delay = f"{result.critical_delay:9.1f}" if result.is_legal else f"{'FAIL':>9s}"
        print(
            f"{name:20s} {delay} {result.conflict_count:7d} "
            f"{elapsed:7.2f}s  {verdict}"
        )


if __name__ == "__main__":
    main()
