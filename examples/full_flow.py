#!/usr/bin/env python3
"""Full prototyping flow: flat netlist -> die partitioning -> routing.

Run with::

    python examples/full_flow.py

Starts where a real emulation project starts — a flat logic design — and
walks the whole stack:

1. generate a clustered synthetic design (Rent's-rule-style locality),
2. partition it onto the dies of a 2-FPGA system (recursive FM bisection,
   the flow stage of the paper's Fig. 2(b) that precedes system routing),
3. route the resulting die-level netlist with the synergistic router,
4. report utilization/timing and the achievable emulation frequency.
"""

from repro import DelayModel, DesignRuleChecker, SynergisticRouter, SystemBuilder
from repro.partition import DiePartitioner, generate_logic_netlist
from repro.report import solution_report, system_report
from repro.timing import FrequencyEstimator


def main():
    # --- 1. the flat design ---------------------------------------------
    design = generate_logic_netlist(
        num_cells=600,
        num_modules=12,
        nets_per_cell=1.4,
        global_net_fraction=0.12,
        seed=42,
    )
    print(f"flat design: {design}")

    # --- 2. the target system and the partition --------------------------
    builder = SystemBuilder()
    fpga_a = builder.add_fpga(num_dies=4, sll_capacity=300, name="boardA")
    fpga_b = builder.add_fpga(num_dies=4, sll_capacity=300, name="boardB")
    builder.add_tdm_edge(fpga_a.die(3), fpga_b.die(0), capacity=16)
    builder.add_tdm_edge(fpga_a.die(0), fpga_b.die(3), capacity=16)
    system = builder.build()
    print()
    print(system_report(system))

    partitioner = DiePartitioner(system, balance_slack=0.2)
    partition = partitioner.partition(design)
    print(
        f"partition: {partition.cut_nets} of {design.num_nets} nets cross dies; "
        f"die areas "
        + ", ".join(
            f"{die}:{area:.0f}" for die, area in sorted(partition.die_areas.items())
        )
    )

    # --- 3. system routing ------------------------------------------------
    netlist = partitioner.to_die_netlist(design, partition)
    print(f"die-level netlist: {netlist}")
    model = DelayModel()
    result = SynergisticRouter(system, netlist, model).route()
    report = DesignRuleChecker(system, netlist, model).check(result.solution)
    print(f"routing: critical delay {result.critical_delay:.1f}, {report.summary()}")

    # --- 4. reports --------------------------------------------------------
    print()
    print(solution_report(result.solution, model))

    estimator = FrequencyEstimator(tdm_clock_mhz=1000.0)
    estimate = estimator.estimate(result.critical_delay)
    print(
        f"with a {estimate.tdm_clock_mhz:.0f} MHz TDM clock the emulated "
        f"system clock can reach {estimate.system_clock_mhz:.1f} MHz"
    )


if __name__ == "__main__":
    main()
