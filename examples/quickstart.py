#!/usr/bin/env python3
"""Quickstart: build a small multi-FPGA system, route it, inspect results.

Run with::

    python examples/quickstart.py

Walks through the full public API: system construction, netlist
definition, routing, timing analysis and the design-rule check.
"""

from repro import (
    DelayModel,
    DesignRuleChecker,
    Net,
    Netlist,
    SynergisticRouter,
    SystemBuilder,
)
from repro.timing import TimingAnalyzer


def build_system():
    """A 2-FPGA prototyping board: 4 dies each, two TDM cables."""
    builder = SystemBuilder()
    fpga_a = builder.add_fpga(num_dies=4, sll_capacity=500, name="fpgaA")
    fpga_b = builder.add_fpga(num_dies=4, sll_capacity=500, name="fpgaB")
    # Two TDM cables between the boards, 16 physical wires each.
    builder.add_tdm_edge(fpga_a.die(3), fpga_b.die(0), capacity=16)
    builder.add_tdm_edge(fpga_a.die(0), fpga_b.die(3), capacity=16)
    return builder.build()


def build_netlist():
    """A handful of nets, including a multi-fanout broadcast."""
    return Netlist(
        [
            Net("cpu_to_mem", source_die=0, sink_dies=(5,)),
            Net("mem_to_cpu", source_die=5, sink_dies=(0,)),
            Net("clk_tree", source_die=2, sink_dies=(0, 3, 4, 7)),
            Net("dma_req", source_die=1, sink_dies=(6,)),
            Net("dma_ack", source_die=6, sink_dies=(1,)),
            Net("local_bus", source_die=3, sink_dies=(3,)),  # intra-die
        ]
    )


def main():
    system = build_system()
    netlist = build_netlist()
    delay_model = DelayModel()  # d_SLL=0.5, d0=2.0, d1=0.5, step p=8

    print(f"system : {system}")
    print(f"netlist: {netlist}")

    # --- route ---------------------------------------------------------
    router = SynergisticRouter(system, netlist, delay_model)
    result = router.route()
    print(f"\ncritical connection delay: {result.critical_delay:.2f}")
    print(f"SLL conflicts            : {result.conflict_count}")
    fractions = result.phase_times.fractions()
    print(
        f"runtime breakdown        : IR {fractions['IR']:.0%}, "
        f"TA {fractions['TA']:.0%}, LG&WA {fractions['LG & WA']:.0%}"
    )

    # --- inspect per-connection timing ----------------------------------
    analyzer = TimingAnalyzer(system, netlist, delay_model)
    print("\nworst connections:")
    for timing in analyzer.worst_connections(result.solution, count=3):
        conn = netlist.connections[timing.connection_index]
        net = netlist.net(conn.net_index)
        path = " -> ".join(str(d) for d in result.solution.path(conn.index))
        print(
            f"  {net.name:12s} to die {conn.sink_die}: delay {timing.delay:5.2f} "
            f"({timing.num_sll_edges} SLL + {timing.num_tdm_edges} TDM)  path {path}"
        )

    # --- inspect the TDM wires ------------------------------------------
    print("\nTDM wires:")
    for edge in system.tdm_edges:
        for wire in result.solution.wires.get(edge.index, []):
            nets = ", ".join(netlist.net(n).name for n in wire.net_indices)
            arrow = "->" if wire.direction == 0 else "<-"
            print(
                f"  edge {edge.die_a}{arrow}{edge.die_b}: ratio {wire.ratio:3d}  "
                f"carrying [{nets}]"
            )

    # --- verify against every design rule --------------------------------
    report = DesignRuleChecker(system, netlist, delay_model).check(result.solution)
    print(f"\n{report.summary()}")


if __name__ == "__main__":
    main()
