#!/usr/bin/env python3
"""TDM design-space exploration: capacity vs critical delay.

Run with::

    python examples/tdm_exploration.py

A system architect sizing a prototyping board wants to know how many
physical TDM wires each cable needs.  This example sweeps the TDM edge
capacity for a fixed emulation workload and reports the critical
connection delay and the resulting maximum TDM ratio — the classic
capacity/performance trade-off the TDM technique exists to manage.
It also sweeps the TDM step `p`, showing the legalization granularity
cost.
"""

import random

from repro import Net, Netlist, SystemBuilder


def build_case(tdm_capacity, seed=11, num_nets=400):
    builder = SystemBuilder()
    fpga_a = builder.add_fpga(num_dies=4, sll_capacity=2000)
    fpga_b = builder.add_fpga(num_dies=4, sll_capacity=2000)
    builder.add_tdm_edge(fpga_a.die(3), fpga_b.die(0), tdm_capacity)
    builder.add_tdm_edge(fpga_a.die(0), fpga_b.die(3), tdm_capacity)
    system = builder.build()

    rng = random.Random(seed)
    nets = []
    for i in range(num_nets):
        # Cross-FPGA dominated traffic, as in emulation workloads.
        source = rng.randrange(4)
        sink = 4 + rng.randrange(4)
        if rng.random() < 0.5:
            source, sink = sink, source
        nets.append(Net(f"n{i}", source, (sink,)))
    return system, Netlist(nets)


def sweep_capacity():
    from repro.analysis import sweep_tdm_capacity

    print("TDM capacity sweep (step p = 8):")
    result = sweep_tdm_capacity(
        build_system=lambda capacity: build_case(capacity)[0],
        netlist_for=lambda system: build_case(system.tdm_edges[0].capacity)[1],
        capacities=(4, 8, 16, 32, 64, 128),
    )
    for row in result.as_rows():
        print("  " + row)
    best = result.best()
    print(f"  -> smallest delay at capacity {best.parameter}")


def sweep_step():
    from repro.analysis import sweep_tdm_step

    print("\nTDM step sweep (capacity = 16 wires/cable):")
    system, netlist = build_case(16)
    result = sweep_tdm_step(system, netlist, steps=(1, 2, 4, 8, 16))
    for row in result.as_rows():
        print("  " + row)


if __name__ == "__main__":
    sweep_capacity()
    sweep_step()
